// The serving engine: the library's compute-once/serve-many layer.
//
//   Plan        optimize-or-cache — fingerprint the (workload, options) pair,
//               consult the two-tier StrategyCache, and only fall back to
//               OPT_HDMM on a genuine miss.
//   Measure     one budgeted noisy measurement of a dataset: the accountant
//               charges epsilon under sequential composition (refusing
//               over-budget requests before any noise is drawn), then the
//               session reconstructs and holds x_hat for unlimited free
//               post-processing.
//   AnswerBatch pool-parallel batched answering of point/range/marginal
//               queries against the held x_hat. Queries are evaluated as box
//               sums on a d-dimensional summed-area table of x_hat
//               (inclusion-exclusion over 2^d corners), so a batch never
//               densifies a workload matrix and per-query cost is O(2^d)
//               instead of O(N).
//
// Everything downstream of Measure is post-processing of a differentially
// private release: answering any number of queries from a session consumes
// no additional budget.
#ifndef HDMM_ENGINE_ENGINE_H_
#define HDMM_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/hdmm.h"
#include "core/strategy.h"
#include "engine/accountant.h"
#include "engine/fingerprint.h"
#include "engine/strategy_cache.h"
#include "linalg/matrix.h"
#include "workload/domain.h"
#include "workload/workload.h"

namespace hdmm {

/// An axis-aligned box query over the domain: the answer is
/// sum_{lo <= t <= hi} x_hat[t] (bounds inclusive, per attribute). Point
/// queries fix every attribute (lo == hi everywhere); marginal-cell queries
/// fix a subset and leave the rest full-range.
struct BoxQuery {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
};

/// A full-range box over every attribute of `domain` (the Total query).
BoxQuery FullRangeQuery(const Domain& domain);

/// Parses one query line against a domain:
///
///   point    attr=V [attr=V ...]     every attribute required
///   marginal attr=V [attr=V ...]     named attributes fixed, rest summed
///   range    attr=LO:HI [attr=V ...] named attributes bounded, rest full
///
/// Attributes are referenced by name; zero-based indices are accepted only
/// for fully unnamed domains (on a named schema a bare index is rejected —
/// silently binding positions would answer the wrong query if the schema
/// order ever changes). Returns false with a message on malformed input,
/// unknown attributes, out-of-range values, or (for `point`) missing
/// attributes.
bool ParseQueryLine(const std::string& line, const Domain& domain,
                    BoxQuery* out, std::string* error);

/// One noisy measurement of a dataset and the state needed to answer
/// queries from it: the reconstructed x_hat and its summed-area table.
/// Sessions are immutable after construction and safe to share across
/// threads for answering.
class MeasurementSession {
 public:
  MeasurementSession(Domain domain, Vector x_hat, double epsilon,
                     std::shared_ptr<const Strategy> strategy);

  const Domain& domain() const { return domain_; }
  double epsilon() const { return epsilon_; }
  const Vector& XHat() const { return x_hat_; }
  const std::shared_ptr<const Strategy>& strategy() const { return strategy_; }

  /// Answers one box query in O(2^d) from the summed-area table.
  double Answer(const BoxQuery& q) const;

  /// Answers a batch, sharded across the persistent ThreadPool.
  Vector AnswerBatch(const std::vector<BoxQuery>& queries) const;

 private:
  Domain domain_;
  Vector x_hat_;
  double epsilon_;
  std::shared_ptr<const Strategy> strategy_;
  Vector prefix_;                 // Summed-area table of x_hat_.
  std::vector<int64_t> strides_;  // Row-major strides per attribute.
};

struct EngineOptions {
  /// Optimizer configuration; part of the plan fingerprint.
  HdmmOptions optimizer;

  /// Strategy cache configuration (set cache.disk_dir for persistence).
  StrategyCacheOptions cache;

  /// Per-dataset epsilon ceiling enforced by the accountant.
  double total_epsilon = 1.0;

  /// Durable budget ledger file (see BudgetAccountant). Deployments that
  /// persist strategies across restarts should persist the ledger too —
  /// otherwise every restart hands out the full budget again.
  std::string ledger_path;
};

/// Where a planned strategy came from.
enum class PlanSource { kMemoryCache, kDiskCache, kOptimized };

const char* PlanSourceName(PlanSource source);

struct PlanResult {
  std::shared_ptr<const Strategy> strategy;
  Fingerprint fingerprint;
  PlanSource source = PlanSource::kOptimized;
  double seconds = 0.0;  ///< Wall time spent inside Plan.
  /// Non-empty when a freshly optimized strategy could not be written
  /// through to the disk tier (the in-memory plan is still valid, but warm
  /// restarts will re-optimize until the directory is fixed).
  std::string cache_error;
};

/// The serving facade. Thread-safe: Plan/Measure may be called concurrently;
/// sessions returned by Measure are independent.
class Engine {
 public:
  explicit Engine(EngineOptions options);

  /// Optimize-or-cache. On a miss runs OPT_HDMM and write-throughs the
  /// result; on a hit the optimization is skipped entirely.
  PlanResult Plan(const UnionWorkload& w);

  /// Plans, charges `epsilon` against `dataset_id`, measures the data vector
  /// `x`, and reconstructs. Returns nullptr (with *error) when the
  /// accountant refuses the charge; no noise is drawn in that case.
  std::unique_ptr<MeasurementSession> Measure(const UnionWorkload& w,
                                              const std::string& dataset_id,
                                              const Vector& x, double epsilon,
                                              Rng* rng,
                                              std::string* error = nullptr);

  BudgetAccountant& accountant() { return accountant_; }
  StrategyCache& cache() { return cache_; }
  const EngineOptions& options() const { return options_; }

 private:
  /// x_hat from noisy answers, reusing a per-fingerprint Cholesky factor of
  /// A^T A for explicit strategies (structured strategies reconstruct
  /// through their own cached pseudo-inverses on the shared object).
  Vector Reconstruct(const Strategy& strategy, const Fingerprint& fp,
                     const Vector& y);

  EngineOptions options_;
  StrategyCache cache_;
  BudgetAccountant accountant_;
  std::mutex recon_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const Matrix>> recon_chol_;
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_ENGINE_H_
