#include "engine/fingerprint.h"

#include "common/hash.h"

namespace hdmm {
namespace {

// 64-bit FNV-1a via the shared hasher (common/hash.h — the same hashing the
// GramCache keys factors with). The cache tolerates collisions (a collision
// only ever causes a wrong strategy to be *validated* against the workload
// by callers that check support, or a stale disk file to be overwritten), so
// a cryptographic hash is not needed.
using Hasher = Fnv1aHasher;

uint64_t HashProduct(const ProductWorkload& p) {
  Hasher h;
  h.U64(0x70726f64);  // "prod" domain separator.
  h.F64(p.weight);
  h.I64(static_cast<int64_t>(p.factors.size()));
  for (const Matrix& f : p.factors) {
    h.I64(f.rows());
    h.I64(f.cols());
    for (int64_t i = 0; i < f.size(); ++i) h.F64(f.data()[i]);
  }
  return h.Digest();
}

void HashLbfgs(Hasher* h, const LbfgsbOptions& o) {
  h->I32(o.max_iterations);
  h->I32(o.history);
  h->F64(o.pg_tolerance);
  h->F64(o.f_tolerance);
  h->I32(o.max_line_search);
  h->F64(o.armijo_c1);
}

void HashKronOptions(Hasher* h, const OptKronOptions& o) {
  h->I64(static_cast<int64_t>(o.p.size()));
  for (int p : o.p) h->I32(p);
  h->I32(o.max_cycles);
  h->F64(o.cycle_tol);
  h->I32(o.restarts);
  HashLbfgs(h, o.lbfgs);
}

}  // namespace

std::string Fingerprint::Hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<size_t>(15 - i)] = kDigits[(value >> (4 * i)) & 0xF];
  }
  return out;
}

Fingerprint FingerprintWorkload(const UnionWorkload& w) {
  Hasher h;
  h.U64(0x68646d6d77310000ULL);  // Format tag: "hdmmw1".
  // Domain shape only: attribute names are labels, not math — renaming an
  // attribute must not force a re-optimization.
  h.I32(w.domain().NumAttributes());
  for (int64_t n : w.domain().sizes()) h.I64(n);
  // Products combine with modular addition, which is commutative: the union
  // W_1 + W_2 and W_2 + W_1 are the same stacked workload up to a row
  // permutation, and expected error is row-permutation invariant.
  uint64_t products = 0;
  for (const ProductWorkload& p : w.products()) products += HashProduct(p);
  h.U64(products);
  h.I32(w.NumProducts());
  return Fingerprint{h.Digest()};
}

Fingerprint FingerprintPlan(const UnionWorkload& w,
                            const HdmmOptions& options) {
  Hasher h;
  h.U64(0x68646d6d70310000ULL);  // Format tag: "hdmmp1".
  h.U64(FingerprintWorkload(w).value);
  h.I32(options.restarts);
  h.Bool(options.use_kron);
  h.Bool(options.use_union);
  h.Bool(options.use_marginals);
  h.I32(options.max_marginals_dims);
  h.U64(options.seed);
  HashKronOptions(&h, options.kron);
  HashKronOptions(&h, options.union_opts.kron);
  h.I32(options.union_opts.max_groups);
  h.Bool(options.union_opts.optimize_budget_split);
  h.I32(options.marginals.restarts);
  HashLbfgs(&h, options.marginals.lbfgs);
  h.F64(options.marginals.min_full_weight);
  h.Bool(options.marginals.workload_aware_init);
  return Fingerprint{h.Digest()};
}

}  // namespace hdmm
