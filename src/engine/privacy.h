// Privacy-budget vocabulary for the serving engine: which mechanism a
// measurement used and what it costs in the accountant's composition regime.
//
// Two regimes are supported (Bun & Steinke, "Concentrated Differential
// Privacy: Simplifications, Extensions, and Lower Bounds"):
//
//   pure-eps   Laplace measurements only; epsilons add (basic sequential
//              composition). A Gaussian measurement has no finite pure-eps
//              cost, so zCDP charges are refused, never approximated.
//   rho-zCDP   rho adds across measurements of one dataset. A Gaussian
//              release at sigma = sens / sqrt(2 rho) costs exactly rho
//              (Prop 1.6); a Laplace release at budget eps costs
//              eps^2 / 2 (Prop 1.4, pure DP => zCDP). The running rho is
//              reported as (eps, delta)-DP through Prop 1.3,
//              eps = rho + 2 sqrt(rho ln(1/delta)) — the accounting used by
//              the HDMM journal version (McKenna et al. 2021).
#ifndef HDMM_ENGINE_PRIVACY_H_
#define HDMM_ENGINE_PRIVACY_H_

#include <string>

namespace hdmm {

/// Which noise mechanism a measurement (or ledger record) used.
enum class Mechanism { kLaplace, kGaussian };

const char* MechanismName(Mechanism mechanism);

/// Parses "laplace" / "gaussian"; returns false on anything else.
bool ParseMechanismName(const std::string& name, Mechanism* out);

/// How a BudgetAccountant composes charges.
enum class BudgetRegime { kPureDp, kZCdp };

const char* BudgetRegimeName(BudgetRegime regime);

/// One measurement's privacy cost, in the units native to its mechanism:
/// epsilon for Laplace, rho for Gaussian. The accountant converts to its
/// regime's composition currency (and refuses costs it cannot soundly
/// express — there is no finite pure-eps cost for a Gaussian release).
struct PrivacyCharge {
  Mechanism mechanism = Mechanism::kLaplace;
  double epsilon = 0.0;  ///< Pure-DP cost; meaningful for kLaplace.
  double rho = 0.0;      ///< zCDP cost; meaningful for kGaussian.

  /// A Laplace measurement at budget `epsilon`. Dies unless epsilon is
  /// positive and finite.
  static PrivacyCharge Laplace(double epsilon);

  /// A Gaussian measurement at zCDP cost `rho`. Dies unless rho is positive
  /// and finite.
  static PrivacyCharge Gaussian(double rho);
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_PRIVACY_H_
