#include "engine/strategy_cache.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "core/strategy_io.h"

namespace hdmm {

namespace {

// Registry-side mirrors of stats_: the struct stays the per-instance API,
// the counters are what `stats`/--stats-json report process-wide.
Counter* const g_memory_hits =
    Metrics::GetCounter("strategy_cache.memory_hits");
Counter* const g_disk_hits = Metrics::GetCounter("strategy_cache.disk_hits");
Counter* const g_misses = Metrics::GetCounter("strategy_cache.misses");
Counter* const g_evictions = Metrics::GetCounter("strategy_cache.evictions");
Counter* const g_corrupt_quarantined =
    Metrics::GetCounter("strategy_cache.corrupt_quarantined");
Counter* const g_disk_read_errors =
    Metrics::GetCounter("strategy_cache.disk_read_errors");
Counter* const g_disk_write_failures =
    Metrics::GetCounter("strategy_cache.disk_write_failures");
Counter* const g_disk_reprobes =
    Metrics::GetCounter("strategy_cache.disk_reprobes");
Gauge* const g_degraded = Metrics::GetGauge("strategy_cache.degraded");

}  // namespace

StrategyCache::StrategyCache(StrategyCacheOptions options)
    : options_(std::move(options)) {
  if (options_.memory_capacity == 0) options_.memory_capacity = 1;
}

std::string StrategyCache::DiskPath(const Fingerprint& fp) const {
  if (options_.disk_dir.empty()) return "";
  return options_.disk_dir + "/" + fp.Hex() + ".strategy";
}

void StrategyCache::Promote(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void StrategyCache::InsertLocked(uint64_t key,
                                 std::shared_ptr<const Strategy> strategy) {
  auto found = index_.find(key);
  if (found != index_.end()) {
    found->second->strategy = std::move(strategy);
    Promote(found->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(strategy)});
  index_[key] = lru_.begin();
  while (lru_.size() > options_.memory_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    g_evictions->Add(1);
  }
}

std::shared_ptr<const Strategy> StrategyCache::Get(const Fingerprint& fp,
                                                   Tier* tier) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(fp.value);
    if (it != index_.end()) {
      ++stats_.memory_hits;
      g_memory_hits->Add(1);
      Promote(it->second);
      if (tier != nullptr) *tier = Tier::kMemory;
      return it->second->strategy;
    }
  }
  // Disk tier, outside the lock: parsing a strategy file can be slow and
  // must not serialize unrelated lookups.
  const std::string path = DiskPath(fp);
  if (!path.empty()) {
    std::unique_ptr<Strategy> loaded;
    const Status status = LoadStrategyFileOr(path, &loaded);
    if (status.ok()) {
      std::shared_ptr<const Strategy> shared = std::move(loaded);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_hits;
      g_disk_hits->Add(1);
      InsertLocked(fp.value, shared);
      if (tier != nullptr) *tier = Tier::kDisk;
      return shared;
    }
    if (status.code() == StatusCode::kCorruption) {
      // Quarantine, don't delete: the bad bytes are the postmortem evidence,
      // and moving them aside means the miss below replans and rewrites a
      // good file instead of tripping over the same corruption forever.
      std::error_code ec;
      std::filesystem::rename(path, path + ".corrupt", ec);
      if (ec) std::filesystem::remove(path, ec);  // Last resort: unpoison.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.corrupt_quarantined;
      g_corrupt_quarantined->Add(1);
    } else if (status.code() != StatusCode::kNotFound) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_read_errors;
      g_disk_read_errors->Add(1);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  g_misses->Add(1);
  if (tier != nullptr) *tier = Tier::kMiss;
  return nullptr;
}

HDMM_REGISTER_CRASH_SITE("strategy_cache.put.torn_tmp");
HDMM_REGISTER_CRASH_SITE("strategy_cache.put.tmp_synced");
HDMM_REGISTER_CRASH_SITE("strategy_cache.put.after_rename");

Status StrategyCache::Put(const Fingerprint& fp,
                          std::shared_ptr<const Strategy> strategy) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    InsertLocked(fp.value, strategy);
  }
  const std::string path = DiskPath(fp);
  if (path.empty()) return Status::Ok();
  // While degraded, most Puts skip the disk — but every kReprobeInterval-th
  // one probes it with a real write, so a recovered disk re-enables the
  // tier. Without the probe, degradation would be one-way in steady state:
  // no writes attempted means no success to reset the failure counter.
  bool probing = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (disk_writes_disabled_) {
      if (++degraded_puts_ % kReprobeInterval != 0) return Status::Ok();
      probing = true;
      ++stats_.disk_reprobes;
      g_disk_reprobes->Add(1);
    }
  }
  auto disk_failed = [this, probing](Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_write_failures;
    g_disk_write_failures->Add(1);
    if (++consecutive_disk_failures_ >= kDiskFailureLimit) {
      // The disk tier is hurting, not helping: stop retrying on every Plan
      // and serve from memory only. Reads keep working, so entries written
      // before the disk went bad are still honored.
      disk_writes_disabled_ = true;
      g_degraded->Set(1.0);
    }
    // A failed probe keeps the degraded contract: Put returns OK.
    return probing ? Status::Ok() : status;
  };
  if (HDMM_FAILPOINT("strategy_cache.put.io_error")) {
    return disk_failed(Status::IoError("injected: strategy_cache.put.io_error"));
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.disk_dir, ec);
  if (ec) {
    return disk_failed(Status::IoError("cannot create cache directory '" +
                                       options_.disk_dir +
                                       "': " + ec.message()));
  }
  // Write-then-rename so the disk tier never exposes a torn file: a crashed
  // or concurrent writer can leave at most a stale `.tmp` sibling, never a
  // partial `<hex>.strategy` for a concurrent Get (or the next restart) to
  // parse. The tmp name carries a per-writer tag so two concurrent Puts
  // (same process or not) never interleave writes into one tmp file; both
  // write complete files and rename(2) within one directory atomically
  // installs one of them.
  static std::atomic<uint64_t> put_counter{0};
  const std::string tmp_path =
      path + "." + std::to_string(::getpid()) + "-" +
      std::to_string(put_counter.fetch_add(1)) + ".tmp";
  if (HDMM_FAILPOINT("strategy_cache.put.torn_tmp")) {
    // Simulate dying mid-write: half the serialization reaches the tmp file
    // and the process is gone. Recovery must see no `<hex>.strategy` at all.
    const std::string text = SerializeStrategy(*strategy);
    std::FILE* f = std::fopen(tmp_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(text.data(), 1, text.size() / 2, f);
      std::fflush(f);
      ::fsync(fileno(f));
    }
    Failpoints::CrashNow();
  }
  std::string io_error;
  if (!SaveStrategyFile(tmp_path, *strategy, &io_error)) {
    std::filesystem::remove(tmp_path, ec);  // Best effort: no torn residue.
    return disk_failed(Status::IoError(io_error));
  }
  if (HDMM_FAILPOINT("strategy_cache.put.tmp_synced")) {
    // Complete tmp file on disk, crash before rename: recovery sees a stale
    // `.tmp` sibling and no installed entry — a clean miss.
    Failpoints::CrashNow();
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    return disk_failed(
        Status::IoError("cannot move strategy file into place at '" + path +
                        "'"));
  }
  if (HDMM_FAILPOINT("strategy_cache.put.after_rename")) {
    // Crash after the atomic install: recovery must parse a complete file.
    Failpoints::CrashNow();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    consecutive_disk_failures_ = 0;
    if (disk_writes_disabled_) {
      // A successful probe: the disk recovered, bring the tier back.
      disk_writes_disabled_ = false;
      degraded_puts_ = 0;
      g_degraded->Set(0.0);
    }
  }
  return Status::Ok();
}

bool StrategyCache::DiskWriteDegraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_writes_disabled_;
}

void StrategyCache::ClearMemory() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

StrategyCache::Stats StrategyCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t StrategyCache::MemorySize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace hdmm
