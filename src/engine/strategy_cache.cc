#include "engine/strategy_cache.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <utility>

#include "core/strategy_io.h"

namespace hdmm {

StrategyCache::StrategyCache(StrategyCacheOptions options)
    : options_(std::move(options)) {
  if (options_.memory_capacity == 0) options_.memory_capacity = 1;
}

std::string StrategyCache::DiskPath(const Fingerprint& fp) const {
  if (options_.disk_dir.empty()) return "";
  return options_.disk_dir + "/" + fp.Hex() + ".strategy";
}

void StrategyCache::Promote(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void StrategyCache::InsertLocked(uint64_t key,
                                 std::shared_ptr<const Strategy> strategy) {
  auto found = index_.find(key);
  if (found != index_.end()) {
    found->second->strategy = std::move(strategy);
    Promote(found->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(strategy)});
  index_[key] = lru_.begin();
  while (lru_.size() > options_.memory_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const Strategy> StrategyCache::Get(const Fingerprint& fp,
                                                   Tier* tier) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(fp.value);
    if (it != index_.end()) {
      ++stats_.memory_hits;
      Promote(it->second);
      if (tier != nullptr) *tier = Tier::kMemory;
      return it->second->strategy;
    }
  }
  // Disk tier, outside the lock: parsing a strategy file can be slow and
  // must not serialize unrelated lookups.
  const std::string path = DiskPath(fp);
  if (!path.empty()) {
    std::string error;
    std::unique_ptr<Strategy> loaded = LoadStrategyFile(path, &error);
    if (loaded != nullptr) {
      std::shared_ptr<const Strategy> shared = std::move(loaded);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.disk_hits;
      InsertLocked(fp.value, shared);
      if (tier != nullptr) *tier = Tier::kDisk;
      return shared;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  if (tier != nullptr) *tier = Tier::kMiss;
  return nullptr;
}

bool StrategyCache::Put(const Fingerprint& fp,
                        std::shared_ptr<const Strategy> strategy,
                        std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    InsertLocked(fp.value, strategy);
  }
  const std::string path = DiskPath(fp);
  if (path.empty()) return true;
  std::error_code ec;
  std::filesystem::create_directories(options_.disk_dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create cache directory '" + options_.disk_dir +
               "': " + ec.message();
    }
    return false;
  }
  // Write-then-rename so the disk tier never exposes a torn file: a crashed
  // or concurrent writer can leave at most a stale `.tmp` sibling, never a
  // partial `<hex>.strategy` for a concurrent Get (or the next restart) to
  // parse. The tmp name carries a per-writer tag so two concurrent Puts
  // (same process or not) never interleave writes into one tmp file; both
  // write complete files and rename(2) within one directory atomically
  // installs one of them.
  static std::atomic<uint64_t> put_counter{0};
  const std::string tmp_path =
      path + "." + std::to_string(::getpid()) + "-" +
      std::to_string(put_counter.fetch_add(1)) + ".tmp";
  std::string io_error;
  if (!SaveStrategyFile(tmp_path, *strategy, &io_error)) {
    std::filesystem::remove(tmp_path, ec);  // Best effort: no torn residue.
    if (error != nullptr) *error = io_error;
    return false;
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    if (error != nullptr) {
      *error = "cannot move strategy file into place at '" + path + "'";
    }
    return false;
  }
  return true;
}

void StrategyCache::ClearMemory() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

StrategyCache::Stats StrategyCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t StrategyCache::MemorySize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace hdmm
