// Resource governor for the serving tier: admission control, a
// graceful-degradation ladder, and the accounting that keeps concurrent
// measurement sessions inside a configured memory budget.
//
// The serve-many model (optimize once, answer forever) means a long-lived
// process accumulates sessions, each pinning up to two data-vector stores
// (x_hat + summed-area table). Nothing bounded that before: enough
// concurrent sessions and the process OOMs — after their privacy budget was
// already spent, which the paper's one-shot measurement model makes
// unrecoverable. The governor moves the refusal to the *front* of the
// pipeline: a request that cannot be afforded is refused with
// kResourceExhausted (plus a retry_after_ms hint) before any plan is run,
// any noise drawn, or any budget charged.
//
// Ladder, in order, before refusing:
//
//   1. admit in place      the estimated footprint fits the budget.
//   2. degrade to mmap     a memory-backend session is forced onto the
//                          mmap backend, shrinking its resident estimate
//                          from 2·N·8 bytes to the hot-tile budgets.
//   3. hibernate idle      least-recently-touched mmap sessions drop their
//                          hot-tile LRUs to zero (tiles stay sealed on
//                          disk; answers still work one transient tile at
//                          a time) until enough bytes free up.
//   4. refuse              kResourceExhausted with retry_after_ms.
//
// Footprints are *estimates from the domain shape* (the only thing known at
// admission time); they deliberately upper-bound the stores' steady-state
// mapped/resident bytes so the sum of admitted charges bounds real usage.
//
// Metrics: governor.{admitted,refused,degraded_to_mmap,hibernated,woken}
// counters and governor.{sessions,charged_bytes} gauges. Failpoints:
// governor.admit.force_refuse (refuse everything — overload drills),
// governor.hibernate.io_error (hibernation rung reports failure, ladder
// skips the victim).
#ifndef HDMM_ENGINE_GOVERNOR_H_
#define HDMM_ENGINE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/status.h"
#include "engine/tile_store.h"

namespace hdmm {

/// Governor knobs, surfaced through EngineOptions and `hdmm_cli serve`
/// (`--max-sessions`, `--memory-budget-bytes`). A limit of 0 means
/// "unlimited"; with both limits 0 the engine does not construct a governor
/// at all and the serving path is byte-identical to the ungoverned one.
struct GovernorOptions {
  /// Concurrently live measurement sessions (0 = unlimited). Sessions
  /// count from admission until destruction; hibernation does not reduce
  /// the count (a hibernated session still answers).
  int64_t max_sessions = 0;
  /// Budget over the summed per-session footprint estimates
  /// (0 = unlimited).
  int64_t memory_budget_bytes = 0;
  /// The retry_after_ms hint carried on every refusal.
  int retry_after_ms = 100;
};

/// What the governor needs from a session to walk it down the ladder.
/// MeasurementSession implements this; the indirection keeps governor.h
/// free of engine.h (the engine already includes the governor).
class GovernedSession {
 public:
  virtual ~GovernedSession() = default;
  /// True when HibernateStores/WakeStores can actually shrink this session
  /// (mmap backend with materialized stores).
  virtual bool Hibernatable() const = 0;
  /// Drops the hot-tile LRUs to zero. Idempotent; answers keep working.
  virtual void HibernateStores() = 0;
  /// Restores the configured hot-tile budgets. Idempotent.
  virtual void WakeStores() = 0;
};

class ResourceGovernor;

/// RAII admission: one admitted session's charge against the governor's
/// session and byte budgets. Movable, not copyable; releasing (destruction)
/// returns the charge. A default-constructed ticket is inert — sessions
/// built without a governor carry one at zero cost. Tickets share ownership
/// of the governor, so a session outliving its Engine stays safe.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept { *this = std::move(other); }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket();

  bool valid() const { return governor_ != nullptr; }

  /// Attaches the built session so the hibernation rung can reach it.
  void Bind(GovernedSession* session);
  /// Detaches the session (governor will never touch it again) while
  /// keeping the byte charge — called first thing in ~MeasurementSession,
  /// before the stores unmap, so the charge outlives the mappings.
  void Unbind();
  /// Marks the session recently used (LRU recency) and wakes it if it was
  /// hibernated and the budget allows. Internally throttled — safe to call
  /// per answered query.
  void Touch();

 private:
  friend class ResourceGovernor;
  AdmissionTicket(std::shared_ptr<ResourceGovernor> governor, uint64_t id)
      : governor_(std::move(governor)), id_(id) {}

  std::shared_ptr<ResourceGovernor> governor_;
  uint64_t id_ = 0;
  std::atomic<uint64_t> touch_count_{0};
};

/// Thread-safe; one per Engine. Create through std::make_shared — Admit
/// hands out tickets that share ownership (enable_shared_from_this), so a
/// stack-constructed governor cannot admit. See the file comment for the
/// ladder.
class ResourceGovernor
    : public std::enable_shared_from_this<ResourceGovernor> {
 public:
  explicit ResourceGovernor(GovernorOptions options);

  /// Admission + degradation ladder for a session over `domain_cells`
  /// flattened cells. May rewrite `storage` (backend forced to mmap on rung
  /// 2 — an empty dir is resolved to a unique temp dir by the session, as
  /// always) and may hibernate idle sessions (rung 3). On refusal returns
  /// kResourceExhausted carrying retry_after_ms; nothing is charged.
  StatusOr<AdmissionTicket> Admit(int64_t domain_cells,
                                  SessionStorageOptions* storage);

  /// The footprint estimate Admit charges for this shape — exposed so tests
  /// and capacity planning see the same arithmetic.
  static int64_t EstimateFootprintBytes(int64_t domain_cells,
                                        const SessionStorageOptions& storage);

  int64_t live_sessions() const;
  int64_t charged_bytes() const;
  const GovernorOptions& options() const { return options_; }

 private:
  friend class AdmissionTicket;

  struct Entry {
    int64_t charged_bytes = 0;    ///< Currently held against the budget.
    int64_t full_bytes = 0;       ///< Charge when awake.
    int64_t floor_bytes = 0;      ///< Charge when hibernated.
    GovernedSession* session = nullptr;  ///< Null until Bind / after Unbind.
    bool hibernated = false;
    std::list<uint64_t>::iterator lru_it;  ///< Into lru_; front = most recent.
  };

  void BindLocked(uint64_t id, GovernedSession* session);
  void Release(uint64_t id);
  void UnbindOnly(uint64_t id);
  void TouchEntry(uint64_t id);
  /// Hibernates cold sessions until `needed_bytes` fit, oldest first.
  /// Returns true when the budget now covers them. Caller holds mu_.
  bool HibernateUntilFits(int64_t needed_bytes);
  void PublishGauges() const;  // Caller holds mu_.

  const GovernorOptions options_;

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  int64_t charged_bytes_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // Front = most recently touched.
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_GOVERNOR_H_
