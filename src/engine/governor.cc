#include "engine/governor.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace hdmm {

namespace {

// Registry-cached counters/gauges, the tile-store pattern.
Counter* const g_admitted = Metrics::GetCounter("governor.admitted");
Counter* const g_refused = Metrics::GetCounter("governor.refused");
Counter* const g_degraded =
    Metrics::GetCounter("governor.degraded_to_mmap");
Counter* const g_hibernated = Metrics::GetCounter("governor.hibernated");
Counter* const g_woken = Metrics::GetCounter("governor.woken");
Gauge* const g_sessions_gauge = Metrics::GetGauge("governor.sessions");
Gauge* const g_charged_gauge = Metrics::GetGauge("governor.charged_bytes");

// Per-mapped-tile slack for the 40-byte header plus page rounding; folded
// into every estimate so the sum of charges stays an upper bound on what
// the stores actually map.
constexpr int64_t kTileSlack = 4096;

int64_t PerStoreEstimate(int64_t cells, const SessionStorageOptions& s) {
  const int64_t dense = cells * static_cast<int64_t>(sizeof(double));
  if (s.backend == SessionStorage::kMemory) return dense;
  // Mmap backend: the hot-tile LRU keeps at most max(budget, one tile)
  // mapped per store, never more than the whole (tiled) vector.
  const int64_t tile = std::max<int64_t>(8, s.tile_bytes) + kTileSlack;
  return std::min(dense + kTileSlack, std::max(s.hot_tile_budget, tile));
}

int64_t HibernatedFloor(int64_t full_bytes, const SessionStorageOptions& s) {
  // A hibernated store still maps one transient tile per read; budget two
  // (x_hat + summed-area table), capped by the awake charge.
  const int64_t tile = std::max<int64_t>(8, s.tile_bytes) + kTileSlack;
  return std::min(full_bytes, 2 * tile);
}

}  // namespace

// --------------------------------------------------------- AdmissionTicket

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (governor_ != nullptr) governor_->Release(id_);
    governor_ = std::move(other.governor_);
    id_ = other.id_;
    touch_count_.store(0, std::memory_order_relaxed);
    other.governor_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() {
  if (governor_ != nullptr) governor_->Release(id_);
}

void AdmissionTicket::Bind(GovernedSession* session) {
  if (governor_ != nullptr) governor_->BindLocked(id_, session);
}

void AdmissionTicket::Unbind() {
  if (governor_ != nullptr) governor_->UnbindOnly(id_);
}

void AdmissionTicket::Touch() {
  if (governor_ == nullptr) return;
  // Throttled: recency only needs to be approximately fresh, and a batch of
  // point queries must not serialize on the governor lock per query.
  if (touch_count_.fetch_add(1, std::memory_order_relaxed) % 64 != 0) return;
  governor_->TouchEntry(id_);
}

// -------------------------------------------------------- ResourceGovernor

ResourceGovernor::ResourceGovernor(GovernorOptions options)
    : options_(options) {
  HDMM_CHECK_MSG(options_.max_sessions >= 0 &&
                     options_.memory_budget_bytes >= 0 &&
                     options_.retry_after_ms >= 0,
                 "governor limits must be non-negative");
}

int64_t ResourceGovernor::EstimateFootprintBytes(
    int64_t domain_cells, const SessionStorageOptions& storage) {
  const int64_t cells = std::max<int64_t>(0, domain_cells);
  // Two full-domain stores: x_hat and its summed-area table.
  return 2 * PerStoreEstimate(cells, storage);
}

StatusOr<AdmissionTicket> ResourceGovernor::Admit(
    int64_t domain_cells, SessionStorageOptions* storage) {
  HDMM_TRACE_SPAN("Governor::Admit");
  HDMM_CHECK(storage != nullptr);
  std::lock_guard<std::mutex> lock(mu_);

  const auto refuse = [&](const std::string& why) -> Status {
    g_refused->Add(1);
    return WithRetryAfter(Status::ResourceExhausted(why),
                          options_.retry_after_ms);
  };

  if (HDMM_FAILPOINT("governor.admit.force_refuse")) {
    return refuse("injected: governor.admit.force_refuse");
  }

  // Session-count limit first: hibernation frees bytes, never slots.
  if (options_.max_sessions > 0 &&
      static_cast<int64_t>(entries_.size()) >= options_.max_sessions) {
    return refuse("session limit reached (" +
                  std::to_string(options_.max_sessions) + " live)");
  }

  int64_t bytes = EstimateFootprintBytes(domain_cells, *storage);
  if (options_.memory_budget_bytes > 0 &&
      charged_bytes_ + bytes > options_.memory_budget_bytes) {
    // Rung 2: force the new session out-of-core. Its resident estimate
    // drops from dense to the hot-tile budgets; the session resolves an
    // empty dir to a unique temp directory exactly as a configured mmap
    // session would.
    if (storage->backend == SessionStorage::kMemory) {
      SessionStorageOptions candidate = *storage;
      candidate.backend = SessionStorage::kMmap;
      const int64_t degraded = EstimateFootprintBytes(domain_cells, candidate);
      // Only take the rung when it actually shrinks the charge — a huge
      // hot-tile budget can make the mmap estimate the larger one, and an
      // mmap session charged at the (smaller) memory estimate would break
      // the charges-bound-usage invariant.
      if (degraded < bytes) {
        *storage = candidate;
        bytes = degraded;
        g_degraded->Add(1);
      }
    }
    // Rung 3: hibernate cold sessions until the remainder fits.
    if (charged_bytes_ + bytes > options_.memory_budget_bytes &&
        !HibernateUntilFits(bytes)) {
      return refuse(
          "memory budget exhausted (" + std::to_string(charged_bytes_) +
          " of " + std::to_string(options_.memory_budget_bytes) +
          " bytes charged, request needs " + std::to_string(bytes) + ")");
    }
  }

  const uint64_t id = next_id_++;
  Entry entry;
  entry.full_bytes = bytes;
  entry.charged_bytes = bytes;
  entry.floor_bytes = storage->backend == SessionStorage::kMmap
                          ? HibernatedFloor(bytes, *storage)
                          : bytes;
  lru_.push_front(id);
  entry.lru_it = lru_.begin();
  charged_bytes_ += bytes;
  entries_.emplace(id, entry);
  g_admitted->Add(1);
  PublishGauges();
  return AdmissionTicket(shared_from_this(), id);
}

bool ResourceGovernor::HibernateUntilFits(int64_t needed_bytes) {
  // Oldest (least recently touched) first. The victim's stores drop their
  // hot-tile LRUs; its answers keep working one transient tile at a time,
  // so hibernating a session that turns out to be mid-batch is safe, just
  // slow for it.
  for (auto it = lru_.rbegin();
       it != lru_.rend() &&
       charged_bytes_ + needed_bytes > options_.memory_budget_bytes;
       ++it) {
    Entry& entry = entries_.at(*it);
    if (entry.hibernated || entry.session == nullptr ||
        !entry.session->Hibernatable()) {
      continue;
    }
    if (entry.charged_bytes <= entry.floor_bytes) continue;
    if (HDMM_FAILPOINT("governor.hibernate.io_error")) {
      // The rung reports failure for this victim; the ladder moves on to
      // the next instead of refusing outright.
      continue;
    }
    entry.session->HibernateStores();
    charged_bytes_ -= entry.charged_bytes - entry.floor_bytes;
    entry.charged_bytes = entry.floor_bytes;
    entry.hibernated = true;
    g_hibernated->Add(1);
  }
  return charged_bytes_ + needed_bytes <= options_.memory_budget_bytes;
}

void ResourceGovernor::BindLocked(uint64_t id, GovernedSession* session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.session = session;
}

void ResourceGovernor::UnbindOnly(uint64_t id) {
  // Once this returns, no governor thread will call into the session again
  // — the destructor may unmap its stores. The byte charge stays until the
  // ticket itself releases (after the stores are gone).
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it != entries_.end()) it->second.session = nullptr;
}

void ResourceGovernor::Release(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  charged_bytes_ -= it->second.charged_bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  PublishGauges();
}

void ResourceGovernor::TouchEntry(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
  if (entry.hibernated && entry.session != nullptr) {
    // Wake on use — but only when the budget can absorb the regrowth;
    // otherwise the session keeps serving from its hibernated floor.
    const int64_t regrow = entry.full_bytes - entry.charged_bytes;
    if (options_.memory_budget_bytes == 0 ||
        charged_bytes_ + regrow <= options_.memory_budget_bytes) {
      entry.session->WakeStores();
      charged_bytes_ += regrow;
      entry.charged_bytes = entry.full_bytes;
      entry.hibernated = false;
      g_woken->Add(1);
    }
  }
  PublishGauges();
}

int64_t ResourceGovernor::live_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

int64_t ResourceGovernor::charged_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_bytes_;
}

void ResourceGovernor::PublishGauges() const {
  g_sessions_gauge->Set(static_cast<double>(entries_.size()));
  g_charged_gauge->Set(static_cast<double>(charged_bytes_));
}

}  // namespace hdmm
