// Canonical fingerprints for the serving layer's compute-once/serve-many
// split (Section 3.6: "the optimized strategy A can be computed once and used
// for multiple invocations of measure and reconstruct"). A fingerprint is a
// 64-bit hash of everything strategy selection depends on — the domain shape,
// the workload's products, and the optimizer options — and nothing it does
// not (attribute names, product order, the dataset). Two plan requests with
// equal fingerprints are guaranteed to produce the same strategy, so the
// fingerprint is the StrategyCache key.
#ifndef HDMM_ENGINE_FINGERPRINT_H_
#define HDMM_ENGINE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "core/hdmm.h"
#include "workload/workload.h"

namespace hdmm {

/// A 64-bit cache key with a stable textual form.
struct Fingerprint {
  uint64_t value = 0;

  /// 16 lowercase hex digits, the on-disk naming form.
  std::string Hex() const;

  bool operator==(const Fingerprint& other) const {
    return value == other.value;
  }
  bool operator!=(const Fingerprint& other) const {
    return value != other.value;
  }
};

/// Hash of the workload alone: attribute sizes plus an order-insensitive
/// combination of the product terms (weight + factor entries, bit-exact).
/// Reordering the products of a union never changes the fingerprint;
/// changing any weight, factor entry, or the domain always does.
Fingerprint FingerprintWorkload(const UnionWorkload& w);

/// Hash of a full plan request: the workload fingerprint combined with every
/// HdmmOptions field that can change which strategy OPT_HDMM returns
/// (restarts, seed, operator toggles, and the nested optimizer options).
Fingerprint FingerprintPlan(const UnionWorkload& w, const HdmmOptions& options);

}  // namespace hdmm

#endif  // HDMM_ENGINE_FINGERPRINT_H_
