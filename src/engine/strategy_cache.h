// Fingerprint-keyed strategy cache: the storage half of the serve-many
// engine. A warm Plan() is a hash-map lookup (or a file read after a
// restart) instead of an L-BFGS optimization run — the paper's Section 3.6
// deployment argument made concrete. Two tiers:
//
//   memory  thread-safe LRU of shared_ptr<const Strategy>, bounded capacity
//   disk    one strategy_io file per fingerprint under a cache directory
//           (`<dir>/<16-hex>.strategy`), surviving restarts
//
// The disk tier is optional (empty directory string disables it). Entries
// are immutable once inserted: strategies are shared read-only, so a cached
// strategy's lazily-built pseudo-inverse/factorization state is itself
// reused by every session that plans the same workload.
//
// The disk tier treats the filesystem as untrusted: a corrupt or truncated
// `.strategy` file is quarantined (renamed to `<path>.corrupt`) and treated
// as a miss, so one bad file costs one replan instead of poisoning every
// restart; repeated disk-write failures degrade the cache to memory-only
// rather than failing every Plan.
#ifndef HDMM_ENGINE_STRATEGY_CACHE_H_
#define HDMM_ENGINE_STRATEGY_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "core/strategy.h"
#include "engine/fingerprint.h"

namespace hdmm {

struct StrategyCacheOptions {
  /// Maximum in-memory entries; least-recently-used entries are evicted
  /// beyond it (their disk files, if any, remain).
  size_t memory_capacity = 32;

  /// Directory for the persistent tier; created on first write. Empty
  /// disables disk persistence.
  std::string disk_dir;
};

class StrategyCache {
 public:
  explicit StrategyCache(StrategyCacheOptions options = {});

  StrategyCache(const StrategyCache&) = delete;
  StrategyCache& operator=(const StrategyCache&) = delete;

  /// Which tier satisfied (or failed) a lookup.
  enum class Tier { kMemory, kDisk, kMiss };

  /// Looks up a fingerprint: memory first, then the disk tier (a disk hit is
  /// promoted into memory). Returns nullptr on miss; `tier`, when given,
  /// reports where the entry was found.
  ///
  /// A disk file that exists but fails to parse is QUARANTINED: renamed to
  /// `<path>.corrupt` (preserving the evidence for postmortem), counted in
  /// stats().corrupt_quarantined, and reported as a miss so the caller
  /// replans and overwrites it. An unreadable file (I/O error) is counted
  /// and reported as a miss without touching the file.
  std::shared_ptr<const Strategy> Get(const Fingerprint& fp,
                                      Tier* tier = nullptr);

  /// Inserts (or replaces) the entry and, when the disk tier is enabled,
  /// writes it through to `<dir>/<hex>.strategy` atomically (unique tmp
  /// file + rename), so a crashed or concurrent writer can never leave a
  /// partial strategy file for Get to parse. The memory tier is updated
  /// regardless of the disk outcome; a non-OK return (kIoError) means only
  /// the disk write failed.
  ///
  /// After kDiskFailureLimit consecutive disk-write failures the cache
  /// degrades to memory-only: further Puts skip the disk tier and return OK
  /// (reads still hit existing disk files). A successful disk write resets
  /// the counter. Degradation is not one-way: every kReprobeInterval-th Put
  /// while degraded re-probes the disk with a real write — a recovered disk
  /// (volume remounted, space freed) re-enables the tier on the first
  /// successful probe, and a failed probe stays degraded and still returns
  /// OK (re-probe failures are accounting, not caller errors).
  ///
  /// Failpoints: `strategy_cache.put.io_error` injects a disk-write
  /// failure; crash sites `strategy_cache.put.torn_tmp` (partial tmp file),
  /// `strategy_cache.put.tmp_synced` (complete tmp, no rename), and
  /// `strategy_cache.put.after_rename` SIGKILL mid-write.
  Status Put(const Fingerprint& fp, std::shared_ptr<const Strategy> strategy);

  /// Consecutive disk-write failures before Put stops touching the disk.
  static constexpr int kDiskFailureLimit = 3;

  /// While degraded, one Put in this many attempts the disk anyway, so a
  /// recovered disk brings the tier back without operator intervention.
  static constexpr int kReprobeInterval = 16;

  /// True once Put has given up on the disk tier (see kDiskFailureLimit).
  bool DiskWriteDegraded() const;

  /// Drops every in-memory entry (disk files are untouched).
  void ClearMemory();

  struct Stats {
    uint64_t memory_hits = 0;
    uint64_t disk_hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t corrupt_quarantined = 0;  // Disk files renamed to .corrupt.
    uint64_t disk_read_errors = 0;     // Unreadable (not corrupt) files.
    uint64_t disk_write_failures = 0;  // Failed disk-tier Puts.
    uint64_t disk_reprobes = 0;        // Degraded-mode probe writes tried.
  };
  Stats stats() const;

  size_t MemorySize() const;

  /// Disk file backing a fingerprint ("" when the disk tier is disabled).
  std::string DiskPath(const Fingerprint& fp) const;

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const Strategy> strategy;
  };

  // Caller must hold mu_.
  void Promote(std::list<Entry>::iterator it);
  void InsertLocked(uint64_t key, std::shared_ptr<const Strategy> strategy);

  StrategyCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
  int consecutive_disk_failures_ = 0;
  bool disk_writes_disabled_ = false;
  int degraded_puts_ = 0;  // Puts skipped since degradation; drives probes.
};

}  // namespace hdmm

#endif  // HDMM_ENGINE_STRATEGY_CACHE_H_
