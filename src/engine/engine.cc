#include "engine/engine.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "linalg/cholesky.h"

namespace hdmm {

namespace {

// Resolves an attribute reference (name, or zero-based index for fully
// unnamed domains) without dying on unknown input — serve-mode queries are
// user-supplied and must fail softly. Named schemas never accept bare
// indices: positions silently shift when the schema changes, and a wrong
// answer is worse than a rejected query.
bool ResolveAttribute(const Domain& domain, const std::string& ref, int* out) {
  bool any_named = false;
  for (int i = 0; i < domain.NumAttributes(); ++i) {
    if (domain.AttributeName(i).empty()) continue;
    any_named = true;
    if (domain.AttributeName(i) == ref) {
      *out = i;
      return true;
    }
  }
  if (any_named) return false;
  char* end = nullptr;
  const long idx = std::strtol(ref.c_str(), &end, 10);
  if (!ref.empty() && end == ref.c_str() + ref.size() && idx >= 0 &&
      idx < domain.NumAttributes()) {
    *out = static_cast<int>(idx);
    return true;
  }
  return false;
}

bool ParseBound(const std::string& text, int64_t* lo, int64_t* hi,
                bool allow_range) {
  const size_t colon = text.find(':');
  char* end = nullptr;
  if (colon == std::string::npos) {
    *lo = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) return false;
    *hi = *lo;
    return true;
  }
  if (!allow_range) return false;
  const std::string a = text.substr(0, colon);
  const std::string b = text.substr(colon + 1);
  *lo = std::strtoll(a.c_str(), &end, 10);
  if (a.empty() || end != a.c_str() + a.size()) return false;
  *hi = std::strtoll(b.c_str(), &end, 10);
  if (b.empty() || end != b.c_str() + b.size()) return false;
  return true;
}

}  // namespace

BoxQuery FullRangeQuery(const Domain& domain) {
  BoxQuery q;
  const int d = domain.NumAttributes();
  q.lo.assign(static_cast<size_t>(d), 0);
  q.hi.resize(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    q.hi[static_cast<size_t>(i)] = domain.AttributeSize(i) - 1;
  }
  return q;
}

bool ParseQueryLine(const std::string& line, const Domain& domain,
                    BoxQuery* out, std::string* error) {
  HDMM_CHECK(out != nullptr && error != nullptr);
  std::istringstream in(line);
  std::string kind;
  in >> kind;
  if (kind != "point" && kind != "marginal" && kind != "range") {
    *error = "unknown query kind '" + kind +
             "' (want point | marginal | range)";
    return false;
  }
  const bool allow_range = kind == "range";
  *out = FullRangeQuery(domain);
  std::vector<bool> seen(static_cast<size_t>(domain.NumAttributes()), false);

  std::string token;
  int bound_count = 0;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "bad term '" + token + "' (want attr=value)";
      return false;
    }
    const std::string ref = token.substr(0, eq);
    int attr = -1;
    if (!ResolveAttribute(domain, ref, &attr)) {
      *error = "unknown attribute '" + ref + "'";
      return false;
    }
    if (seen[static_cast<size_t>(attr)]) {
      *error = "attribute '" + ref + "' bound twice";
      return false;
    }
    seen[static_cast<size_t>(attr)] = true;
    int64_t lo = 0, hi = 0;
    if (!ParseBound(token.substr(eq + 1), &lo, &hi, allow_range)) {
      *error = "bad value '" + token.substr(eq + 1) + "'" +
               (allow_range ? " (want V or LO:HI)" : " (want a single value)");
      return false;
    }
    if (lo < 0 || hi < lo || hi >= domain.AttributeSize(attr)) {
      *error = "bounds for '" + ref + "' outside [0, " +
               std::to_string(domain.AttributeSize(attr) - 1) + "]";
      return false;
    }
    out->lo[static_cast<size_t>(attr)] = lo;
    out->hi[static_cast<size_t>(attr)] = hi;
    ++bound_count;
  }
  if (kind == "point" && bound_count != domain.NumAttributes()) {
    *error = "point query must fix every attribute (" +
             std::to_string(bound_count) + " of " +
             std::to_string(domain.NumAttributes()) + " given)";
    return false;
  }
  if (bound_count == 0 && kind != "range") {
    *error = "query binds no attributes";
    return false;
  }
  return true;
}

// --------------------------------------------------------------- session --

MeasurementSession::MeasurementSession(
    Domain domain, Vector x_hat, double epsilon,
    std::shared_ptr<const Strategy> strategy)
    : domain_(std::move(domain)),
      x_hat_(std::move(x_hat)),
      epsilon_(epsilon),
      strategy_(std::move(strategy)) {
  const int d = domain_.NumAttributes();
  HDMM_CHECK(static_cast<int64_t>(x_hat_.size()) == domain_.TotalSize());
  HDMM_CHECK_MSG(d <= 30, "box-query answering supports at most 30 attributes");

  strides_.assign(static_cast<size_t>(d), 1);
  for (int i = d - 2; i >= 0; --i) {
    strides_[static_cast<size_t>(i)] =
        strides_[static_cast<size_t>(i + 1)] * domain_.AttributeSize(i + 1);
  }

  // Summed-area table: one prefix pass per axis turns
  // prefix_[t] into sum_{s <= t componentwise} x_hat[s].
  prefix_ = x_hat_;
  const int64_t n = static_cast<int64_t>(prefix_.size());
  for (int a = 0; a < d; ++a) {
    const int64_t stride = strides_[static_cast<size_t>(a)];
    const int64_t size = domain_.AttributeSize(a);
    for (int64_t i = 0; i < n; ++i) {
      if ((i / stride) % size != 0) prefix_[static_cast<size_t>(i)] +=
          prefix_[static_cast<size_t>(i - stride)];
    }
  }
}

double MeasurementSession::Answer(const BoxQuery& q) const {
  const int d = domain_.NumAttributes();
  HDMM_CHECK_MSG(static_cast<int>(q.lo.size()) == d &&
                     static_cast<int>(q.hi.size()) == d,
                 "query arity does not match the domain");
  for (int i = 0; i < d; ++i) {
    HDMM_CHECK_MSG(q.lo[static_cast<size_t>(i)] >= 0 &&
                       q.hi[static_cast<size_t>(i)] >=
                           q.lo[static_cast<size_t>(i)] &&
                       q.hi[static_cast<size_t>(i)] < domain_.AttributeSize(i),
                   "query bounds outside the domain");
  }
  // Inclusion-exclusion over the 2^d box corners: corner bit i picks the
  // (lo_i - 1) face; a corner with any coordinate -1 contributes zero.
  double total = 0.0;
  const uint32_t corners = 1u << d;
  for (uint32_t mask = 0; mask < corners; ++mask) {
    int64_t index = 0;
    bool outside = false;
    for (int i = 0; i < d && !outside; ++i) {
      const int64_t coord = (mask >> i) & 1u
                                ? q.lo[static_cast<size_t>(i)] - 1
                                : q.hi[static_cast<size_t>(i)];
      if (coord < 0) {
        outside = true;
      } else {
        index += coord * strides_[static_cast<size_t>(i)];
      }
    }
    if (outside) continue;
    const bool negate = __builtin_popcount(mask) & 1;
    const double term = prefix_[static_cast<size_t>(index)];
    total += negate ? -term : term;
  }
  return total;
}

Vector MeasurementSession::AnswerBatch(
    const std::vector<BoxQuery>& queries) const {
  Vector answers(queries.size(), 0.0);
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(queries.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          answers[static_cast<size_t>(i)] =
              Answer(queries[static_cast<size_t>(i)]);
        }
      });
  return answers;
}

// ---------------------------------------------------------------- engine --

const char* PlanSourceName(PlanSource source) {
  switch (source) {
    case PlanSource::kMemoryCache:
      return "memory-cache";
    case PlanSource::kDiskCache:
      return "disk-cache";
    case PlanSource::kOptimized:
      return "optimized";
  }
  return "unknown";
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      accountant_(options_.total_epsilon, options_.ledger_path) {}

PlanResult Engine::Plan(const UnionWorkload& w) {
  WallTimer timer;
  PlanResult result;
  result.fingerprint = FingerprintPlan(w, options_.optimizer);

  StrategyCache::Tier tier = StrategyCache::Tier::kMiss;
  result.strategy = cache_.Get(result.fingerprint, &tier);
  if (result.strategy != nullptr &&
      result.strategy->DomainSize() != w.DomainSize()) {
    // A stale or foreign cache entry (copied cache directory, hand-placed
    // file, fingerprint collision): a strategy for a different domain can
    // never serve this plan, so treat it as a miss — the fresh optimization
    // below overwrites the bad entry.
    result.strategy = nullptr;
  }
  if (result.strategy != nullptr) {
    result.source = tier == StrategyCache::Tier::kMemory
                        ? PlanSource::kMemoryCache
                        : PlanSource::kDiskCache;
    result.seconds = timer.Seconds();
    return result;
  }

  HdmmResult optimized = OptimizeStrategy(w, options_.optimizer);
  result.strategy = std::shared_ptr<const Strategy>(std::move(
      optimized.strategy));
  result.source = PlanSource::kOptimized;
  // A failed write-through must not be silent: the plan still serves, but
  // every restart would re-optimize until the directory is fixed.
  cache_.Put(result.fingerprint, result.strategy, &result.cache_error);
  result.seconds = timer.Seconds();
  return result;
}

Vector Engine::Reconstruct(const Strategy& strategy, const Fingerprint& fp,
                           const Vector& y) {
  // Explicit strategies: least squares through the normal equations with a
  // per-fingerprint Cholesky factor of A^T A, computed once per engine and
  // reused by every subsequent measurement of the same plan. Structured
  // strategies (kron/union/marginals) reconstruct through their own
  // closed-form pseudo-inverses, which are cached lazily on the shared
  // strategy object the cache hands out — also reused across sessions.
  const auto* explicit_strategy =
      dynamic_cast<const ExplicitStrategy*>(&strategy);
  if (explicit_strategy == nullptr) return strategy.Reconstruct(y);

  std::shared_ptr<const Matrix> chol;
  {
    std::lock_guard<std::mutex> lock(recon_mu_);
    auto it = recon_chol_.find(fp.value);
    if (it != recon_chol_.end()) chol = it->second;
  }
  if (chol == nullptr) {
    Matrix l;
    if (!CholeskyFactor(Gram(explicit_strategy->matrix()), &l)) {
      // Rank-deficient A: fall back to the strategy's own pinv path.
      return strategy.Reconstruct(y);
    }
    auto owned = std::make_shared<const Matrix>(std::move(l));
    std::lock_guard<std::mutex> lock(recon_mu_);
    // Keep the factor store bounded by the same capacity as the strategy
    // LRU: a long-lived engine serving many distinct explicit plans must
    // not accumulate N^2-sized factors forever. Dropping them all is cheap
    // to recover from (one re-factorization per live plan).
    if (recon_chol_.size() >= std::max<size_t>(1, options_.cache.memory_capacity)) {
      recon_chol_.clear();
    }
    chol = recon_chol_.emplace(fp.value, std::move(owned)).first->second;
  }
  return CholeskySolve(*chol, MatTVec(explicit_strategy->matrix(), y));
}

std::unique_ptr<MeasurementSession> Engine::Measure(
    const UnionWorkload& w, const std::string& dataset_id, const Vector& x,
    double epsilon, Rng* rng, std::string* error) {
  HDMM_CHECK(rng != nullptr);
  HDMM_CHECK_MSG(static_cast<int64_t>(x.size()) == w.DomainSize(),
                 "data vector length does not match the workload domain");

  PlanResult plan = Plan(w);
  if (!accountant_.TryCharge(dataset_id, epsilon)) {
    if (error != nullptr) {
      std::ostringstream msg;
      msg << "budget exceeded for dataset '" << dataset_id << "': spent "
          << accountant_.Spent(dataset_id) << " of "
          << accountant_.total_epsilon() << ", requested " << epsilon;
      *error = msg.str();
    }
    return nullptr;
  }

  const Vector y = plan.strategy->Measure(x, epsilon, rng);
  Vector x_hat = Reconstruct(*plan.strategy, plan.fingerprint, y);
  return std::make_unique<MeasurementSession>(w.domain(), std::move(x_hat),
                                              epsilon, plan.strategy);
}

}  // namespace hdmm
