#include "engine/engine.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/gaussian.h"
#include "core/gram_cache.h"
#include "linalg/cholesky.h"

namespace hdmm {

namespace {

// Resolves an attribute reference (name, or zero-based index for fully
// unnamed domains) without dying on unknown input — serve-mode queries are
// user-supplied and must fail softly. Named schemas never accept bare
// indices: positions silently shift when the schema changes, and a wrong
// answer is worse than a rejected query.
bool ResolveAttribute(const Domain& domain, const std::string& ref, int* out) {
  bool any_named = false;
  for (int i = 0; i < domain.NumAttributes(); ++i) {
    if (domain.AttributeName(i).empty()) continue;
    any_named = true;
    if (domain.AttributeName(i) == ref) {
      *out = i;
      return true;
    }
  }
  if (any_named) return false;
  char* end = nullptr;
  const long idx = std::strtol(ref.c_str(), &end, 10);
  if (!ref.empty() && end == ref.c_str() + ref.size() && idx >= 0 &&
      idx < domain.NumAttributes()) {
    *out = static_cast<int>(idx);
    return true;
  }
  return false;
}

bool ParseBound(const std::string& text, int64_t* lo, int64_t* hi,
                bool allow_range) {
  const size_t colon = text.find(':');
  char* end = nullptr;
  if (colon == std::string::npos) {
    *lo = std::strtoll(text.c_str(), &end, 10);
    if (text.empty() || end != text.c_str() + text.size()) return false;
    *hi = *lo;
    return true;
  }
  if (!allow_range) return false;
  const std::string a = text.substr(0, colon);
  const std::string b = text.substr(colon + 1);
  *lo = std::strtoll(a.c_str(), &end, 10);
  if (a.empty() || end != a.c_str() + a.size()) return false;
  *hi = std::strtoll(b.c_str(), &end, 10);
  if (b.empty() || end != b.c_str() + b.size()) return false;
  return true;
}

// Store build/read failures inside a session are fatal: there is no way to
// regenerate lost tiles without re-measuring (and re-charging) the dataset,
// so the failure must surface instead of degrading answers silently.
void DieOnStatus(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "session storage: %s: %s\n", what,
               status.ToString().c_str());
  std::abort();
}

// Resolves the session's private storage directory: mmap sessions with no
// configured dir claim a fresh unique directory under the system temp path.
SessionStorageOptions ResolveStorage(SessionStorageOptions storage) {
  if (storage.backend == SessionStorage::kMmap && storage.dir.empty()) {
    static std::atomic<uint64_t> counter{0};
    storage.dir = (std::filesystem::temp_directory_path() /
                   ("hdmm-session-" + std::to_string(::getpid()) + "-" +
                    std::to_string(counter.fetch_add(1))))
                      .string();
  }
  return storage;
}

}  // namespace

BoxQuery FullRangeQuery(const Domain& domain) {
  BoxQuery q;
  const int d = domain.NumAttributes();
  q.lo.assign(static_cast<size_t>(d), 0);
  q.hi.resize(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    q.hi[static_cast<size_t>(i)] = domain.AttributeSize(i) - 1;
  }
  return q;
}

bool ParseQueryLine(const std::string& line, const Domain& domain,
                    BoxQuery* out, std::string* error) {
  HDMM_CHECK(out != nullptr && error != nullptr);
  std::istringstream in(line);
  std::string kind;
  in >> kind;
  if (kind != "point" && kind != "marginal" && kind != "range") {
    *error = "unknown query kind '" + kind +
             "' (want point | marginal | range)";
    return false;
  }
  const bool allow_range = kind == "range";
  *out = FullRangeQuery(domain);
  std::vector<bool> seen(static_cast<size_t>(domain.NumAttributes()), false);

  std::string token;
  int bound_count = 0;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "bad term '" + token + "' (want attr=value)";
      return false;
    }
    const std::string ref = token.substr(0, eq);
    int attr = -1;
    if (!ResolveAttribute(domain, ref, &attr)) {
      *error = "unknown attribute '" + ref + "'";
      return false;
    }
    if (seen[static_cast<size_t>(attr)]) {
      *error = "attribute '" + ref + "' bound twice";
      return false;
    }
    seen[static_cast<size_t>(attr)] = true;
    int64_t lo = 0, hi = 0;
    if (!ParseBound(token.substr(eq + 1), &lo, &hi, allow_range)) {
      *error = "bad value '" + token.substr(eq + 1) + "'" +
               (allow_range ? " (want V or LO:HI)" : " (want a single value)");
      return false;
    }
    if (lo < 0 || hi < lo || hi >= domain.AttributeSize(attr)) {
      *error = "bounds for '" + ref + "' outside [0, " +
               std::to_string(domain.AttributeSize(attr) - 1) + "]";
      return false;
    }
    out->lo[static_cast<size_t>(attr)] = lo;
    out->hi[static_cast<size_t>(attr)] = hi;
    ++bound_count;
  }
  if (kind == "point" && bound_count != domain.NumAttributes()) {
    *error = "point query must fix every attribute (" +
             std::to_string(bound_count) + " of " +
             std::to_string(domain.NumAttributes()) + " given)";
    return false;
  }
  if (bound_count == 0 && kind != "range") {
    *error = "query binds no attributes";
    return false;
  }
  return true;
}

// --------------------------------------------------------------- session --

MeasurementSession::MeasurementSession(
    Domain domain, Vector x_hat, double epsilon,
    std::shared_ptr<const Strategy> strategy, SessionStorageOptions storage)
    : MeasurementSession(std::move(domain), std::move(x_hat),
                         PrivacyCharge::Laplace(epsilon), std::move(strategy),
                         std::move(storage)) {}

MeasurementSession::MeasurementSession(
    Domain domain, Vector x_hat, PrivacyCharge charge,
    std::shared_ptr<const Strategy> strategy, SessionStorageOptions storage)
    : domain_(std::move(domain)),
      charge_(charge),
      strategy_(std::move(strategy)),
      storage_(ResolveStorage(std::move(storage))) {
  HDMM_CHECK(static_cast<int64_t>(x_hat.size()) == domain_.TotalSize());
  InitStrides();
  // Eager sessions materialize the summed-area table up front: the x_hat is
  // already paid for, and Answer must stay lock-free in the common case. On
  // the memory backend the incoming vector is adopted as the x_hat store
  // without copying; on the mmap backend it is streamed out tile-by-tile
  // (the fill callback below is only used on that path — BuildStores
  // replaces it with a store-backed reader when it adopts).
  const Vector& src = x_hat;
  BuildStores(
      [&src](int64_t begin, int64_t end, double* out) {
        std::copy(src.data() + begin, src.data() + end, out);
      },
      storage_.backend == SessionStorage::kMemory ? &x_hat : nullptr);
  materialized_.store(true, std::memory_order_release);
}

MeasurementSession::MeasurementSession(
    Domain domain, std::function<void(int64_t, int64_t, double*)> fill,
    PrivacyCharge charge, std::shared_ptr<const Strategy> strategy,
    SessionStorageOptions storage)
    : domain_(std::move(domain)),
      charge_(charge),
      strategy_(std::move(strategy)),
      storage_(ResolveStorage(std::move(storage))) {
  InitStrides();
  BuildStores(fill, nullptr);
  materialized_.store(true, std::memory_order_release);
}

MeasurementSession::MeasurementSession(
    Domain domain, std::shared_ptr<const MarginalsStrategy> strategy,
    Vector y, PrivacyCharge charge, SessionStorageOptions storage)
    : domain_(std::move(domain)),
      charge_(charge),
      strategy_(strategy),
      storage_(ResolveStorage(std::move(storage))) {
  HDMM_CHECK(strategy != nullptr);
  InitStrides();
  BuildMarginalTables(*strategy, y);
  y_ = std::move(y);
}

MeasurementSession::~MeasurementSession() {
  // Detach from the governor before anything else: after Unbind returns no
  // governor thread can reach this session's stores. The byte charge itself
  // is released later, when ticket_ (declared before the stores) destructs
  // after the mappings are gone.
  ticket_.Unbind();
  // Stores unmap and remove their own tile subdirectories first; then the
  // session's directory itself goes (mmap sessions own their storage).
  xhat_store_.reset();
  prefix_store_.reset();
  if (storage_.backend == SessionStorage::kMmap && !storage_.dir.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(storage_.dir, ec);
  }
}

void MeasurementSession::InitStrides() {
  const int d = domain_.NumAttributes();
  HDMM_CHECK_MSG(d <= 30, "box-query answering supports at most 30 attributes");
  strides_.assign(static_cast<size_t>(d), 1);
  for (int i = d - 2; i >= 0; --i) {
    strides_[static_cast<size_t>(i)] =
        strides_[static_cast<size_t>(i + 1)] * domain_.AttributeSize(i + 1);
  }
}

// Splits the raw measurement vector back into per-mask tables (Apply
// concatenates them in ActiveMasks order, each laid out row-major over the
// kept attributes) and unscales by theta so each table is the unbiased DP
// estimate of its marginal.
void MeasurementSession::BuildMarginalTables(const MarginalsStrategy& strategy,
                                             const Vector& y) {
  const Vector& theta = strategy.theta();
  size_t offset = 0;
  for (uint32_t mask : strategy.ActiveMasks()) {
    MeasuredMarginal table;
    table.mask = mask;
    int64_t cells = 1;
    for (int i = 0; i < domain_.NumAttributes(); ++i) {
      if ((mask >> i) & 1u) {
        table.attrs.push_back(i);
        cells *= domain_.AttributeSize(i);
      }
    }
    table.strides.assign(table.attrs.size(), 1);
    for (int i = static_cast<int>(table.attrs.size()) - 2; i >= 0; --i) {
      table.strides[static_cast<size_t>(i)] =
          table.strides[static_cast<size_t>(i + 1)] *
          domain_.AttributeSize(table.attrs[static_cast<size_t>(i + 1)]);
    }
    const double weight = theta[mask];
    HDMM_CHECK_MSG(weight > 0.0, "active marginal with non-positive weight");
    table.values.resize(static_cast<size_t>(cells));
    HDMM_CHECK(offset + table.values.size() <= y.size());
    for (int64_t i = 0; i < cells; ++i) {
      table.values[static_cast<size_t>(i)] =
          y[offset + static_cast<size_t>(i)] / weight;
    }
    offset += table.values.size();
    marginal_tables_.push_back(std::move(table));
  }
  HDMM_CHECK(offset == y.size());
}

// One streaming pass building both stores: each x_hat tile (produced by
// `fill`) is folded into the summed-area table in flattened row-major order,
// carrying per-axis prefix seams between cells. seams[a][i % strides_[a]]
// holds the summed-area value of the most recent cell one step back along
// axis a's coordinate at the same position on every inner axis — exactly the
// neighbor the classic per-axis prefix pass would read — so the pass never
// needs more than the seams (sum_a strides_[a] cells, ~N / n_0) plus two
// tile buffers, regardless of N.
void MeasurementSession::BuildStores(
    const std::function<void(int64_t, int64_t, double*)>& fill,
    Vector* adopt_xhat) const {
  const int64_t n = domain_.TotalSize();
  std::function<void(int64_t, int64_t, double*)> source = fill;
  if (adopt_xhat != nullptr && storage_.backend == SessionStorage::kMemory) {
    xhat_store_ =
        MemoryVectorStore::Adopt(std::move(*adopt_xhat), storage_.tile_bytes);
    const double* src = xhat_store_->ContiguousData();
    source = [src](int64_t begin, int64_t end, double* out) {
      std::copy(src + begin, src + end, out);
    };
  } else {
    xhat_store_ = MakeDataVectorStore(n, storage_, "xhat");
  }
  prefix_store_ = MakeDataVectorStore(n, storage_, "prefix");
  const bool append_xhat = !xhat_store_->sealed();

  const int d = domain_.NumAttributes();
  std::vector<Vector> seams(static_cast<size_t>(d));
  for (int a = 0; a < d; ++a) {
    seams[static_cast<size_t>(a)].assign(
        static_cast<size_t>(strides_[static_cast<size_t>(a)]), 0.0);
  }
  std::vector<int64_t> coord(static_cast<size_t>(d), 0);
  std::vector<int64_t> pos(static_cast<size_t>(d), 0);  // i % strides_[a].
  const int64_t tile_cells = prefix_store_->tile_cells();
  Vector xbuf(static_cast<size_t>(tile_cells));
  Vector pbuf(static_cast<size_t>(tile_cells));
  for (int64_t begin = 0; begin < n; begin += tile_cells) {
    const int64_t count = std::min(tile_cells, n - begin);
    source(begin, begin + count, xbuf.data());
    for (int64_t i = 0; i < count; ++i) {
      double v = xbuf[static_cast<size_t>(i)];
      // Inner axes first: by the time axis a folds in its seam, v already
      // holds the prefix over every axis after a — the same accumulation
      // order as running the per-axis passes innermost-first.
      for (int a = d - 1; a >= 0; --a) {
        Vector& seam = seams[static_cast<size_t>(a)];
        const size_t p = static_cast<size_t>(pos[static_cast<size_t>(a)]);
        if (coord[static_cast<size_t>(a)] > 0) v += seam[p];
        seam[p] = v;
      }
      pbuf[static_cast<size_t>(i)] = v;
      for (int a = d - 1; a >= 0; --a) {
        if (++coord[static_cast<size_t>(a)] < domain_.AttributeSize(a)) break;
        coord[static_cast<size_t>(a)] = 0;
      }
      for (int a = 0; a < d; ++a) {
        if (++pos[static_cast<size_t>(a)] ==
            strides_[static_cast<size_t>(a)]) {
          pos[static_cast<size_t>(a)] = 0;
        }
      }
    }
    if (append_xhat) {
      DieOnStatus(xhat_store_->AppendTile(xbuf.data(), count),
                  "appending x_hat tile");
    }
    DieOnStatus(prefix_store_->AppendTile(pbuf.data(), count),
                "appending summed-area tile");
  }
  if (append_xhat) DieOnStatus(xhat_store_->Seal(), "sealing x_hat store");
  DieOnStatus(prefix_store_->Seal(), "sealing summed-area store");
  prefix_contig_ = prefix_store_->ContiguousData();
}

void MeasurementSession::EnsureMaterialized() const {
  // Double-checked: the release store below publishes the fully built
  // stores, so once the acquire load sees true every reader is lock-free —
  // pool workers answering a batch must not serialize on the mutex.
  if (materialized_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (materialized_.load(std::memory_order_relaxed)) return;
  // First uncovered query on a marginals-measured session: stream x_hat out
  // of the strategy's closed-form pseudo-inverse (re-expressed as compact
  // per-submask tables) and fold it into the summed-area stores tile by
  // tile. Post-processing only — no budget involved — and no full-domain
  // intermediate is ever held.
  const auto* marginals =
      dynamic_cast<const MarginalsStrategy*>(strategy_.get());
  HDMM_CHECK(marginals != nullptr);
  const MarginalsStreamReconstructor recon(*marginals, y_);
  BuildStores(
      [&recon](int64_t begin, int64_t end, double* out) {
        recon.Fill(begin, end, out);
      },
      nullptr);
  // The raw measurement is dead weight from here on: covered queries read
  // marginal_tables_, everything else reads the summed-area store.
  y_.clear();
  y_.shrink_to_fit();
  materialized_.store(true, std::memory_order_release);
}

const Vector& MeasurementSession::XHat() const {
  EnsureMaterialized();
  if (const Vector* dense = xhat_store_->AsVector()) return *dense;
  // Mmap backend: densify once, on demand, under the lazy lock.
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (static_cast<int64_t>(xhat_dense_.size()) != domain_.TotalSize()) {
    xhat_dense_.resize(static_cast<size_t>(domain_.TotalSize()));
    for (int64_t t = 0; t < xhat_store_->num_tiles(); ++t) {
      StatusOr<TileRef> ref = xhat_store_->Tile(t);
      DieOnStatus(ref.status(), "reading x_hat tile");
      const TileRef& tile = ref.value();
      std::copy(tile.data(), tile.data() + tile.cells(),
                xhat_dense_.data() + t * xhat_store_->tile_cells());
    }
  }
  return xhat_dense_;
}

const MeasuredMarginal* MeasurementSession::CoveringTable(
    const BoxQuery& q) const {
  if (marginal_tables_.empty()) return nullptr;
  const int d = domain_.NumAttributes();
  uint32_t constrained = 0;
  for (int i = 0; i < d; ++i) {
    if (q.lo[static_cast<size_t>(i)] != 0 ||
        q.hi[static_cast<size_t>(i)] != domain_.AttributeSize(i) - 1) {
      constrained |= 1u << i;
    }
  }
  const MeasuredMarginal* best = nullptr;
  int64_t best_cells = 0;
  for (const MeasuredMarginal& table : marginal_tables_) {
    if ((constrained & ~table.mask) != 0) continue;  // Not covered.
    int64_t cells = 1;
    for (int attr : table.attrs) {
      cells *= q.hi[static_cast<size_t>(attr)] -
               q.lo[static_cast<size_t>(attr)] + 1;
    }
    if (best == nullptr || cells < best_cells) {
      best = &table;
      best_cells = cells;
    }
  }
  return best;
}

bool MeasurementSession::CoveredByMarginal(const BoxQuery& q) const {
  return CoveringTable(q) != nullptr;
}

// Sums the table over the query's sub-box (odometer over the kept
// attributes). Cost is the number of covered marginal cells — independent of
// the full domain size, which is the point of serving from marginal tables.
double MeasurementSession::AnswerFromTable(const MeasuredMarginal& table,
                                           const BoxQuery& q) const {
  const size_t k = table.attrs.size();
  std::vector<int64_t> coord(k);
  int64_t index = 0;
  for (size_t i = 0; i < k; ++i) {
    coord[i] = q.lo[static_cast<size_t>(table.attrs[i])];
    index += coord[i] * table.strides[i];
  }
  double total = 0.0;
  while (true) {
    total += table.values[static_cast<size_t>(index)];
    size_t axis = k;
    while (axis > 0) {
      const size_t i = axis - 1;
      const int attr = table.attrs[i];
      if (coord[i] < q.hi[static_cast<size_t>(attr)]) {
        ++coord[i];
        index += table.strides[i];
        break;
      }
      index -= (coord[i] - q.lo[static_cast<size_t>(attr)]) * table.strides[i];
      coord[i] = q.lo[static_cast<size_t>(attr)];
      --axis;
    }
    if (axis == 0) break;
  }
  return total;
}

double MeasurementSession::Answer(const BoxQuery& q) const {
  ticket_.Touch();  // Governor LRU recency; throttled internally.
  return AnswerImpl(q);
}

double MeasurementSession::AnswerImpl(const BoxQuery& q) const {
  const int d = domain_.NumAttributes();
  HDMM_CHECK_MSG(static_cast<int>(q.lo.size()) == d &&
                     static_cast<int>(q.hi.size()) == d,
                 "query arity does not match the domain");
  for (int i = 0; i < d; ++i) {
    HDMM_CHECK_MSG(q.lo[static_cast<size_t>(i)] >= 0 &&
                       q.hi[static_cast<size_t>(i)] >=
                           q.lo[static_cast<size_t>(i)] &&
                       q.hi[static_cast<size_t>(i)] < domain_.AttributeSize(i),
                   "query bounds outside the domain");
  }

  // Marginals-measured sessions answer covered queries straight from the
  // smallest covering measured table — no full-domain reconstruction.
  if (const MeasuredMarginal* table = CoveringTable(q)) {
    return AnswerFromTable(*table, q);
  }

  // Inclusion-exclusion over the 2^d box corners: corner bit i picks the
  // (lo_i - 1) face; a corner with any coordinate -1 contributes zero. Each
  // corner is one summed-area-table cell, so the mmap backend touches at
  // most 2^d tiles per query no matter how large the domain is.
  EnsureMaterialized();
  double total = 0.0;
  const uint32_t corners = 1u << d;
  for (uint32_t mask = 0; mask < corners; ++mask) {
    int64_t index = 0;
    bool outside = false;
    for (int i = 0; i < d && !outside; ++i) {
      const int64_t coord = (mask >> i) & 1u
                                ? q.lo[static_cast<size_t>(i)] - 1
                                : q.hi[static_cast<size_t>(i)];
      if (coord < 0) {
        outside = true;
      } else {
        index += coord * strides_[static_cast<size_t>(i)];
      }
    }
    if (outside) continue;
    const bool negate = __builtin_popcount(mask) & 1;
    const double term = PrefixAt(index);
    total += negate ? -term : term;
  }
  return total;
}

Vector MeasurementSession::AnswerBatch(
    const std::vector<BoxQuery>& queries) const {
  // Without a token AnswerBatchOr cannot fail.
  return std::move(AnswerBatchOr(queries, nullptr)).value();
}

StatusOr<Vector> MeasurementSession::AnswerBatchOr(
    const std::vector<BoxQuery>& queries, const CancelToken* cancel) const {
  // A blown deadline must cost nothing: check before the (potentially
  // expensive) lazy materialization and again once per pool chunk.
  // Answering is post-processing of an already-paid release, so the only
  // thing a cancelled batch loses is the partial answers themselves.
  if (CancelRequested(cancel)) return cancel->StopStatus();
  // One recency touch per batch, not per query: the SAT inner loop answers
  // in tens of nanoseconds and must not share the ticket's touch counter
  // across pool threads.
  ticket_.Touch();
  // Materialize the summed-area table up front when any query will need it,
  // so reconstruction cost is paid once before the parallel region instead
  // of stalling the first worker to hit an uncovered query. Skipped when
  // already materialized (then Answer is lock-free throughout).
  if (!materialized_.load(std::memory_order_acquire)) {
    for (const BoxQuery& q : queries) {
      if (!CoveredByMarginal(q)) {
        EnsureMaterialized();
        break;
      }
    }
  }
  HDMM_TRACE_SPAN("AnswerBatch");
  WallTimer timer;
  Vector answers(queries.size(), 0.0);
  std::atomic<bool> stopped{false};
  ComputePool().ParallelFor(
      0, static_cast<int64_t>(queries.size()), /*grain=*/64,
      [&](int64_t begin, int64_t end) {
        HDMM_TRACE_SPAN("AnswerBatch.chunk");
        if (CancelRequested(cancel)) {
          stopped.store(true, std::memory_order_relaxed);
          return;
        }
        for (int64_t i = begin; i < end; ++i) {
          answers[static_cast<size_t>(i)] =
              AnswerImpl(queries[static_cast<size_t>(i)]);
        }
      });
  if (stopped.load(std::memory_order_relaxed)) return cancel->StopStatus();
  static Counter* const batches =
      Metrics::GetCounter("engine.answer_batch.count");
  static Counter* const answered =
      Metrics::GetCounter("engine.answer_batch.queries");
  static Histogram* const latency =
      Metrics::GetHistogram("engine.answer_batch.latency_ns");
  batches->Add(1);
  answered->Add(queries.size());
  latency->Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
  return answers;
}

// ------------------------------------------------- session governor hooks --

bool MeasurementSession::Hibernatable() const {
  // Only mmap sessions with live stores have anything to shed; the stores
  // are created before materialized_ flips true and never replaced after,
  // so once this returns true the store pointers are stable.
  return storage_.backend == SessionStorage::kMmap &&
         materialized_.load(std::memory_order_acquire);
}

void MeasurementSession::HibernateStores() {
  if (!Hibernatable()) return;
  if (auto* xhat = dynamic_cast<MmapTileStore*>(xhat_store_.get())) {
    xhat->SetHotTileBudget(0);
  }
  if (auto* prefix = dynamic_cast<MmapTileStore*>(prefix_store_.get())) {
    prefix->SetHotTileBudget(0);
  }
  // Drop the XHat() densification cache too — it is a debugging affordance,
  // rebuilt on demand, and under memory pressure it is pure ballast.
  std::lock_guard<std::mutex> lock(lazy_mu_);
  xhat_dense_.clear();
  xhat_dense_.shrink_to_fit();
}

void MeasurementSession::WakeStores() {
  if (!Hibernatable()) return;
  if (auto* xhat = dynamic_cast<MmapTileStore*>(xhat_store_.get())) {
    xhat->SetHotTileBudget(storage_.hot_tile_budget);
  }
  if (auto* prefix = dynamic_cast<MmapTileStore*>(prefix_store_.get())) {
    prefix->SetHotTileBudget(storage_.hot_tile_budget);
  }
}

void MeasurementSession::AttachTicket(AdmissionTicket ticket) {
  ticket_ = std::move(ticket);
  ticket_.Bind(this);
}

// ---------------------------------------------------------------- engine --

const char* PlanSourceName(PlanSource source) {
  switch (source) {
    case PlanSource::kMemoryCache:
      return "memory-cache";
    case PlanSource::kDiskCache:
      return "disk-cache";
    case PlanSource::kOptimized:
      return "optimized";
  }
  return "unknown";
}

MeasureRequest MeasureRequest::Laplace(double epsilon) {
  MeasureRequest request;
  request.mechanism = Mechanism::kLaplace;
  request.epsilon = epsilon;
  return request;
}

MeasureRequest MeasureRequest::Gaussian(double rho) {
  MeasureRequest request;
  request.mechanism = Mechanism::kGaussian;
  request.rho = rho;
  return request;
}

namespace {

BudgetAccountantOptions AccountantOptions(const EngineOptions& options) {
  BudgetAccountantOptions accountant;
  accountant.regime = options.regime;
  accountant.total_epsilon = options.total_epsilon;
  accountant.total_rho = options.total_rho;
  accountant.delta = options.delta;
  accountant.ledger_path = options.ledger_path;
  // Engine-level overrides are epsilon ceilings; the accountant's are in
  // regime units, so convert exactly as the default ceiling is converted.
  for (const auto& [dataset, epsilon] : options.dataset_budgets) {
    accountant.dataset_ceilings[dataset] =
        options.regime == BudgetRegime::kPureDp
            ? epsilon
            : RhoFromEpsilonDelta(epsilon, options.delta);
  }
  return accountant;
}

// Each measured session gets its own storage directory under the configured
// base (so concurrent sessions never share tile files); an empty base lets
// the session derive a unique temp directory itself.
SessionStorageOptions PerSessionStorage(const SessionStorageOptions& base) {
  SessionStorageOptions storage = base;
  if (storage.backend == SessionStorage::kMmap && !storage.dir.empty()) {
    static std::atomic<uint64_t> counter{0};
    storage.dir = (std::filesystem::path(storage.dir) /
                   ("session-" + std::to_string(counter.fetch_add(1))))
                      .string();
  }
  return storage;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      cache_(options_.cache),
      accountant_(AccountantOptions(options_)) {
  if (options_.governor.max_sessions > 0 ||
      options_.governor.memory_budget_bytes > 0) {
    governor_ = std::make_shared<ResourceGovernor>(options_.governor);
  }
}

PlanResult Engine::Plan(const UnionWorkload& w) {
  // Without a token PlanOr cannot fail.
  return std::move(PlanOr(w, nullptr)).value();
}

StatusOr<PlanResult> Engine::PlanOr(const UnionWorkload& w,
                                    const CancelToken* cancel) {
  HDMM_TRACE_SPAN("Engine::Plan");
  static Counter* const memory_hits =
      Metrics::GetCounter("engine.plan.memory_hits");
  static Counter* const disk_hits =
      Metrics::GetCounter("engine.plan.disk_hits");
  static Counter* const optimized_count =
      Metrics::GetCounter("engine.plan.optimized");
  static Histogram* const latency =
      Metrics::GetHistogram("engine.plan.latency_ns");

  if (CancelRequested(cancel)) return cancel->StopStatus();

  WallTimer timer;
  PlanResult result;
  result.fingerprint = FingerprintPlan(w, options_.optimizer);

  StrategyCache::Tier tier = StrategyCache::Tier::kMiss;
  result.strategy = cache_.Get(result.fingerprint, &tier);
  if (result.strategy != nullptr &&
      result.strategy->DomainSize() != w.DomainSize()) {
    // A stale or foreign cache entry (copied cache directory, hand-placed
    // file, fingerprint collision): a strategy for a different domain can
    // never serve this plan, so treat it as a miss — the fresh optimization
    // below overwrites the bad entry.
    result.strategy = nullptr;
  }
  if (result.strategy != nullptr) {
    result.source = tier == StrategyCache::Tier::kMemory
                        ? PlanSource::kMemoryCache
                        : PlanSource::kDiskCache;
    (tier == StrategyCache::Tier::kMemory ? memory_hits : disk_hits)->Add(1);
    result.seconds = timer.Seconds();
    latency->Record(static_cast<uint64_t>(result.seconds * 1e9));
    return result;
  }

  const GramCache::Stats gram_before = GramCache::Global().stats();
  HdmmOptions optimizer = options_.optimizer;
  optimizer.cancel = cancel;
  HdmmResult optimized = OptimizeStrategy(w, optimizer);
  const GramCache::Stats gram_after = GramCache::Global().stats();
  result.gram_cache_hits = gram_after.hits - gram_before.hits;
  result.gram_cache_misses = gram_after.misses - gram_before.misses;
  if (optimized.cancelled) {
    // No side effects on a cancelled plan: the partial strategy is a
    // best-so-far, not the deterministic full-grid winner, so caching (or
    // returning) it would make plan quality depend on the deadline.
    static Counter* const cancelled_count =
        Metrics::GetCounter("engine.plan.cancelled");
    cancelled_count->Add(1);
    return cancel->StopStatus();
  }
  result.strategy = std::shared_ptr<const Strategy>(std::move(
      optimized.strategy));
  result.source = PlanSource::kOptimized;
  // A failed write-through must not be silent: the plan still serves, but
  // every restart would re-optimize until the directory is fixed.
  const Status put_status = cache_.Put(result.fingerprint, result.strategy);
  if (!put_status.ok()) result.cache_error = put_status.ToString();
  optimized_count->Add(1);
  result.seconds = timer.Seconds();
  latency->Record(static_cast<uint64_t>(result.seconds * 1e9));
  return result;
}

Vector Engine::Reconstruct(const Strategy& strategy, const Fingerprint& fp,
                           const Vector& y) {
  // Explicit strategies: least squares through the normal equations with a
  // per-fingerprint Cholesky factor of A^T A, computed once per engine and
  // reused by every subsequent measurement of the same plan. Structured
  // strategies (kron/union/marginals) reconstruct through their own
  // closed-form pseudo-inverses, which are cached lazily on the shared
  // strategy object the cache hands out — also reused across sessions.
  const auto* explicit_strategy =
      dynamic_cast<const ExplicitStrategy*>(&strategy);
  if (explicit_strategy == nullptr) return strategy.Reconstruct(y);

  std::shared_ptr<const Matrix> chol;
  {
    std::lock_guard<std::mutex> lock(recon_mu_);
    auto it = recon_chol_.find(fp.value);
    if (it != recon_chol_.end()) chol = it->second;
  }
  if (chol == nullptr) {
    Matrix l;
    if (!CholeskyFactor(Gram(explicit_strategy->matrix()), &l)) {
      // Rank-deficient A: fall back to the strategy's own pinv path.
      return strategy.Reconstruct(y);
    }
    auto owned = std::make_shared<const Matrix>(std::move(l));
    std::lock_guard<std::mutex> lock(recon_mu_);
    // Keep the factor store bounded by the same capacity as the strategy
    // LRU: a long-lived engine serving many distinct explicit plans must
    // not accumulate N^2-sized factors forever. Dropping them all is cheap
    // to recover from (one re-factorization per live plan).
    if (recon_chol_.size() >= std::max<size_t>(1, options_.cache.memory_capacity)) {
      recon_chol_.clear();
    }
    chol = recon_chol_.emplace(fp.value, std::move(owned)).first->second;
  }
  return CholeskySolve(*chol, MatTVec(explicit_strategy->matrix(), y));
}

StatusOr<std::unique_ptr<MeasurementSession>> Engine::MeasureOr(
    const UnionWorkload& w, const std::string& dataset_id, const Vector& x,
    const MeasureRequest& request, Rng* rng, const CancelToken* cancel) {
  HDMM_TRACE_SPAN("Engine::Measure");
  static Histogram* const latency =
      Metrics::GetHistogram("engine.measure.latency_ns");
  WallTimer timer;
  HDMM_CHECK(rng != nullptr);
  HDMM_CHECK_MSG(static_cast<int64_t>(x.size()) == w.DomainSize(),
                 "data vector length does not match the workload domain");

  const PrivacyCharge charge =
      request.mechanism == Mechanism::kLaplace
          ? PrivacyCharge::Laplace(request.epsilon)
          : PrivacyCharge::Gaussian(request.rho);

  // Refusals must precede every side effect. Order: deadline, admission,
  // plan (cancellable; data-independent, no budget), deadline again, and
  // only then the accountant — which itself refuses before drawing noise.
  if (CancelRequested(cancel)) return cancel->StopStatus();

  SessionStorageOptions storage = options_.session_storage;
  AdmissionTicket ticket;
  if (governor_ != nullptr) {
    StatusOr<AdmissionTicket> admitted =
        governor_->Admit(w.DomainSize(), &storage);
    if (!admitted.ok()) return admitted.status();
    ticket = std::move(admitted).value();
    // The ticket's RAII release keeps every early return below charge-
    // neutral on the governor too.
  }
  storage = PerSessionStorage(storage);

  StatusOr<PlanResult> planned = PlanOr(w, cancel);
  if (!planned.ok()) return planned.status();
  PlanResult plan = std::move(planned).value();
  if (CancelRequested(cancel)) return cancel->StopStatus();

  const Status charged = accountant_.Charge(dataset_id, charge);
  if (!charged.ok()) {
    return charged.Annotated("dataset '" + dataset_id + "'");
  }

  Vector y = request.mechanism == Mechanism::kLaplace
                 ? plan.strategy->Measure(x, request.epsilon, rng)
                 : plan.strategy->MeasureGaussian(x, request.rho, rng);

  // Marginals plans serve covered queries straight from the measured
  // marginal tables; x_hat reconstruction is deferred until an uncovered
  // query arrives.
  if (auto marginals =
          std::dynamic_pointer_cast<const MarginalsStrategy>(plan.strategy)) {
    auto session = std::make_unique<MeasurementSession>(
        w.domain(), marginals, std::move(y), charge, storage);
    session->AttachTicket(std::move(ticket));
    latency->Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
    return session;
  }

  Vector x_hat = Reconstruct(*plan.strategy, plan.fingerprint, y);
  auto session = std::make_unique<MeasurementSession>(
      w.domain(), std::move(x_hat), charge, plan.strategy, storage);
  session->AttachTicket(std::move(ticket));
  latency->Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
  return session;
}

std::unique_ptr<MeasurementSession> Engine::Measure(
    const UnionWorkload& w, const std::string& dataset_id, const Vector& x,
    const MeasureRequest& request, Rng* rng, std::string* error) {
  StatusOr<std::unique_ptr<MeasurementSession>> session =
      MeasureOr(w, dataset_id, x, request, rng);
  if (!session.ok()) {
    if (error != nullptr) *error = session.status().message();
    return nullptr;
  }
  return std::move(session).value();
}

std::unique_ptr<MeasurementSession> Engine::Measure(
    const UnionWorkload& w, const std::string& dataset_id, const Vector& x,
    double epsilon, Rng* rng, std::string* error) {
  return Measure(w, dataset_id, x, MeasureRequest::Laplace(epsilon), rng,
                 error);
}

}  // namespace hdmm
