#include "engine/privacy.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

const char* MechanismName(Mechanism mechanism) {
  switch (mechanism) {
    case Mechanism::kLaplace:
      return "laplace";
    case Mechanism::kGaussian:
      return "gaussian";
  }
  return "unknown";
}

bool ParseMechanismName(const std::string& name, Mechanism* out) {
  if (name == "laplace") {
    *out = Mechanism::kLaplace;
    return true;
  }
  if (name == "gaussian") {
    *out = Mechanism::kGaussian;
    return true;
  }
  return false;
}

const char* BudgetRegimeName(BudgetRegime regime) {
  switch (regime) {
    case BudgetRegime::kPureDp:
      return "pure-dp";
    case BudgetRegime::kZCdp:
      return "zcdp";
  }
  return "unknown";
}

PrivacyCharge PrivacyCharge::Laplace(double epsilon) {
  HDMM_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                 "epsilon must be positive and finite");
  PrivacyCharge charge;
  charge.mechanism = Mechanism::kLaplace;
  charge.epsilon = epsilon;
  return charge;
}

PrivacyCharge PrivacyCharge::Gaussian(double rho) {
  HDMM_CHECK_MSG(std::isfinite(rho) && rho > 0.0,
                 "rho must be positive and finite");
  PrivacyCharge charge;
  charge.mechanism = Mechanism::kGaussian;
  charge.rho = rho;
  return charge;
}

}  // namespace hdmm
