// Datasets over multi-dimensional domains and their vector form x
// (Section 3.4). The data vector is always explicit; only queries are
// implicit.
#ifndef HDMM_DATA_DATASET_H_
#define HDMM_DATA_DATASET_H_

#include <vector>

#include "linalg/vector_ops.h"
#include "workload/domain.h"

namespace hdmm {

/// A multiset of tuples over a Domain, stored as flattened cell indices.
class Dataset {
 public:
  explicit Dataset(Domain domain) : domain_(std::move(domain)) {}

  const Domain& domain() const { return domain_; }
  int64_t NumRecords() const { return static_cast<int64_t>(records_.size()); }

  /// Adds one tuple by coordinates.
  void AddRecord(const std::vector<int64_t>& coords);

  /// Adds one tuple by flattened cell index.
  void AddRecordFlat(int64_t cell);

  /// The data vector x: entry t counts occurrences of tuple t (Section 3.4).
  Vector ToDataVector() const;

 private:
  Domain domain_;
  std::vector<int64_t> records_;
};

/// Builds a Dataset holding `counts[i]` copies of cell i (for tests and for
/// data-dependent algorithms working directly on histograms).
Dataset FromDataVector(const Domain& domain, const Vector& counts);

}  // namespace hdmm

#endif  // HDMM_DATA_DATASET_H_
