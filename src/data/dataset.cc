#include "data/dataset.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

void Dataset::AddRecord(const std::vector<int64_t>& coords) {
  records_.push_back(domain_.Flatten(coords));
}

void Dataset::AddRecordFlat(int64_t cell) {
  HDMM_CHECK(cell >= 0 && cell < domain_.TotalSize());
  records_.push_back(cell);
}

Vector Dataset::ToDataVector() const {
  Vector x(static_cast<size_t>(domain_.TotalSize()), 0.0);
  for (int64_t cell : records_) x[static_cast<size_t>(cell)] += 1.0;
  return x;
}

Dataset FromDataVector(const Domain& domain, const Vector& counts) {
  HDMM_CHECK(static_cast<int64_t>(counts.size()) == domain.TotalSize());
  Dataset d(domain);
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t c = static_cast<int64_t>(std::llround(counts[i]));
    HDMM_CHECK(c >= 0);
    for (int64_t k = 0; k < c; ++k) d.AddRecordFlat(static_cast<int64_t>(i));
  }
  return d;
}

}  // namespace hdmm
