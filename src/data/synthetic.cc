#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"

namespace hdmm {

Vector UniformDataVector(const Domain& domain, int64_t total, Rng* rng) {
  const int64_t n = domain.TotalSize();
  Vector x(static_cast<size_t>(n), 0.0);
  for (int64_t r = 0; r < total; ++r)
    x[static_cast<size_t>(rng->UniformInt(0, n - 1))] += 1.0;
  return x;
}

Vector ZipfDataVector(const Domain& domain, int64_t total, double shape,
                      Rng* rng) {
  const int64_t n = domain.TotalSize();
  HDMM_CHECK(shape > 0.0);
  // Unnormalized Zipf masses over a random permutation of the cells.
  Vector mass(static_cast<size_t>(n));
  double z = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    mass[static_cast<size_t>(i)] = 1.0 / std::pow(static_cast<double>(i + 1), shape);
    z += mass[static_cast<size_t>(i)];
  }
  std::vector<int> perm = rng->Permutation(static_cast<int>(std::min<int64_t>(
      n, std::numeric_limits<int>::max())));
  Vector x(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double expected = static_cast<double>(total) * mass[static_cast<size_t>(i)] / z;
    x[static_cast<size_t>(perm[static_cast<size_t>(i)])] =
        std::floor(expected + rng->Uniform());
  }
  return x;
}

Vector ClusteredDataVector(const Domain& domain, int64_t total,
                           int num_clusters, Rng* rng) {
  const int64_t n = domain.TotalSize();
  HDMM_CHECK(num_clusters >= 1);
  Vector density(static_cast<size_t>(n), 0.0);
  int64_t seg = std::max<int64_t>(1, n / num_clusters);
  double z = 0.0;
  for (int64_t start = 0; start < n; start += seg) {
    // Each segment gets a log-uniform density level.
    double level = std::pow(10.0, rng->Uniform(0.0, 3.0));
    for (int64_t i = start; i < std::min(n, start + seg); ++i) {
      density[static_cast<size_t>(i)] = level;
      z += level;
    }
  }
  Vector x(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    double expected = static_cast<double>(total) * density[static_cast<size_t>(i)] / z;
    x[static_cast<size_t>(i)] = std::floor(expected + rng->Uniform());
  }
  return x;
}

Vector DpbenchStandinDataVector(const std::string& name, int64_t domain_size,
                                int64_t total, Rng* rng) {
  Domain d({domain_size});
  if (name == "Hepth") {
    return ClusteredDataVector(d, total, 12, rng);
  } else if (name == "Medcost") {
    return ZipfDataVector(d, total, 1.2, rng);
  } else if (name == "Nettrace") {
    // Very sparse with a few spikes.
    Vector x(static_cast<size_t>(domain_size), 0.0);
    int spikes = 8;
    for (int s = 0; s < spikes; ++s) {
      int64_t pos = rng->UniformInt(0, domain_size - 1);
      x[static_cast<size_t>(pos)] += static_cast<double>(total / spikes);
    }
    return x;
  } else if (name == "Patent") {
    return ClusteredDataVector(d, total, 32, rng);
  } else if (name == "Searchlogs") {
    return ZipfDataVector(d, total, 0.8, rng);
  }
  HDMM_CHECK_MSG(false, "unknown dpbench stand-in name");
  return {};
}

}  // namespace hdmm
