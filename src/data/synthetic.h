// Synthetic data-vector generators. The paper's headline error metric is
// data-independent; real datasets matter only for the data-dependent
// algorithms (DAWA, PrivBayes). These generators produce the controlled
// non-uniformity those algorithms are sensitive to (see DESIGN.md,
// "Substitutions").
#ifndef HDMM_DATA_SYNTHETIC_H_
#define HDMM_DATA_SYNTHETIC_H_

#include "common/rng.h"
#include "linalg/vector_ops.h"
#include "workload/domain.h"

namespace hdmm {

/// `total` records spread uniformly at random over the domain.
Vector UniformDataVector(const Domain& domain, int64_t total, Rng* rng);

/// Zipf-distributed cell masses (heavy head, long tail), shuffled across the
/// domain; `shape` > 0 controls skew (1.0 is classic Zipf).
Vector ZipfDataVector(const Domain& domain, int64_t total, double shape,
                      Rng* rng);

/// Piecewise-uniform data with `num_clusters` contiguous segments of very
/// different density. This is the structure DAWA's partitioning stage
/// exploits (approximately uniform regions, Section 8.1 of [25]).
Vector ClusteredDataVector(const Domain& domain, int64_t total,
                           int num_clusters, Rng* rng);

/// Named 1D shapes standing in for the DPBench datasets used in Table 6
/// (Hepth, Medcost, Nettrace, Patent, Searchlogs): each has a distinctive
/// density profile (spiky, smooth, sparse, bimodal, heavy-tailed).
Vector DpbenchStandinDataVector(const std::string& name, int64_t domain_size,
                                int64_t total, Rng* rng);

}  // namespace hdmm

#endif  // HDMM_DATA_SYNTHETIC_H_
