#include "data/csv.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace hdmm {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(Trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(Trim(current));
  return fields;
}

std::string LineError(int line_no, const std::string& message) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "line %d: %s", line_no, message.c_str());
  return buf;
}

}  // namespace

bool ParseCsvDataset(const std::string& text, const Domain& domain,
                     Dataset* out, std::string* error) {
  HDMM_CHECK(out != nullptr && error != nullptr);
  std::istringstream in(text);
  std::string line;
  int line_no = 0;

  // Header: map CSV column -> domain attribute.
  if (!std::getline(in, line)) {
    *error = "empty input (missing header)";
    return false;
  }
  ++line_no;
  const std::vector<std::string> header = SplitCsvLine(line);
  const int d = domain.NumAttributes();
  std::vector<int> column_attr(header.size(), -1);
  std::vector<bool> attr_seen(static_cast<size_t>(d), false);
  for (size_t c = 0; c < header.size(); ++c) {
    int attr = -1;
    for (int a = 0; a < d; ++a) {
      if (domain.AttributeName(a) == header[c]) attr = a;
    }
    if (attr < 0) {
      *error = LineError(line_no, "header column '" + header[c] +
                                      "' is not a domain attribute");
      return false;
    }
    if (attr_seen[static_cast<size_t>(attr)]) {
      *error = LineError(line_no,
                         "duplicate header column '" + header[c] + "'");
      return false;
    }
    attr_seen[static_cast<size_t>(attr)] = true;
    column_attr[c] = attr;
  }
  for (int a = 0; a < d; ++a) {
    if (!attr_seen[static_cast<size_t>(a)]) {
      *error = LineError(line_no, "header is missing domain attribute '" +
                                      domain.AttributeName(a) + "'");
      return false;
    }
  }

  Dataset dataset(domain);
  std::vector<int64_t> coords(static_cast<size_t>(d));
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      *error = LineError(
          line_no, "expected " + std::to_string(header.size()) +
                       " fields, got " + std::to_string(fields.size()));
      return false;
    }
    for (size_t c = 0; c < fields.size(); ++c) {
      const int attr = column_attr[c];
      char* end = nullptr;
      const long long v = std::strtoll(fields[c].c_str(), &end, 10);
      if (fields[c].empty() || end != fields[c].c_str() + fields[c].size()) {
        *error = LineError(line_no, "non-integer value '" + fields[c] +
                                        "' for attribute '" +
                                        domain.AttributeName(attr) + "'");
        return false;
      }
      if (v < 0 || v >= domain.AttributeSize(attr)) {
        *error = LineError(
            line_no, "value " + std::to_string(v) + " outside dom(" +
                         domain.AttributeName(attr) + ") = [0, " +
                         std::to_string(domain.AttributeSize(attr)) + ")");
        return false;
      }
      coords[static_cast<size_t>(attr)] = v;
    }
    dataset.AddRecord(coords);
  }
  *out = std::move(dataset);
  return true;
}

bool LoadCsvDataset(const std::string& path, const Domain& domain,
                    Dataset* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsvDataset(buffer.str(), domain, out, error);
}

std::string WriteCsvDataset(const Dataset& dataset) {
  const Domain& domain = dataset.domain();
  std::ostringstream out;
  for (int a = 0; a < domain.NumAttributes(); ++a) {
    if (a > 0) out << ",";
    std::string name = domain.AttributeName(a);
    if (name.empty()) name = "a" + std::to_string(a + 1);
    out << name;
  }
  out << "\n";
  const Vector x = dataset.ToDataVector();
  for (int64_t cell = 0; cell < static_cast<int64_t>(x.size()); ++cell) {
    const int64_t count = static_cast<int64_t>(x[static_cast<size_t>(cell)]);
    if (count <= 0) continue;
    const std::vector<int64_t> coords = domain.Unflatten(cell);
    for (int64_t r = 0; r < count; ++r) {
      for (size_t a = 0; a < coords.size(); ++a) {
        if (a > 0) out << ",";
        out << coords[a];
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace hdmm
