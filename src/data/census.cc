#include "data/census.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "workload/building_blocks.h"
#include "workload/predicate.h"

namespace hdmm {
namespace {

// Attribute indices in the CPH domain.
constexpr int kHispanic = 0;
constexpr int kSex = 1;
constexpr int kRace = 2;
constexpr int kRelationship = 3;
constexpr int kAge = 4;
constexpr int kState = 5;

// A predicate-set matrix of `rows` random age ranges (SF1 tabulates many
// overlapping age brackets, e.g. P12's [0,4], [5,9], ..., [85,114]).
Matrix RandomRangeSet(int64_t n, int rows, Rng* rng) {
  std::vector<Predicate> preds;
  for (int r = 0; r < rows; ++r) {
    int64_t lo = rng->UniformInt(0, n - 1);
    int64_t len = rng->UniformInt(1, std::max<int64_t>(1, n / 4));
    int64_t hi = std::min(n - 1, lo + len - 1);
    preds.push_back(Predicate::Range(lo, hi));
  }
  return VectorizePredicateSet(preds, n);
}

// A predicate-set matrix of `rows` random subsets (SF1's race categories are
// complex disjunctions over the merged 64-value Race attribute, Example 1).
Matrix RandomSubsetSet(int64_t n, int rows, Rng* rng) {
  std::vector<Predicate> preds;
  for (int r = 0; r < rows; ++r) {
    std::vector<int64_t> values;
    for (int64_t v = 0; v < n; ++v) {
      if (rng->Uniform() < 0.25) values.push_back(v);
    }
    if (values.empty()) values.push_back(rng->UniformInt(0, n - 1));
    preds.push_back(Predicate::InSet(std::move(values)));
  }
  return VectorizePredicateSet(preds, n);
}

// Builds the 32 products with per-product query counts summing to 4151.
// `state_factor` (may be empty) is applied to the State attribute of every
// product; when empty the workload lives on the national 5-attribute domain.
UnionWorkload BuildSf1(const Matrix& state_factor) {
  const bool with_state = state_factor.size() > 0;
  Domain domain = CphDomain(with_state);
  UnionWorkload w(domain);
  Rng rng(20180710);  // Fixed seed: the workload is a deterministic fixture.

  // 23 products of 130 queries + 9 products of 129 queries = 4151.
  std::vector<int> sizes;
  for (int j = 0; j < 23; ++j) sizes.push_back(130);
  for (int j = 0; j < 9; ++j) sizes.push_back(129);
  HDMM_CHECK(static_cast<int>(sizes.size()) == 32);

  for (int j = 0; j < 32; ++j) {
    const int size = sizes[static_cast<size_t>(j)];
    ProductWorkload p;
    p.factors.assign(with_state ? 6 : 5, Matrix());
    if (with_state) p.factors[kState] = state_factor;

    // Rotate through representative SF1 shapes. Patterns 0 and 2 split the
    // query count across a binary attribute and need an even size; odd-sized
    // products fall back to the single-attribute patterns.
    const int pattern = (size % 2 == 0) ? (j % 4) : ((j % 2 == 0) ? 1 : 3);
    switch (pattern) {
      case 0: {  // Sex x AgeRanges (P12-like): 2 * (size/2) queries.
        p.factors[kSex] = IdentityBlock(2);
        p.factors[kAge] = RandomRangeSet(115, size / 2, &rng);
        break;
      }
      case 1: {  // Race subsets alone (P3-like).
        p.factors[kRace] = RandomSubsetSet(64, size, &rng);
        break;
      }
      case 2: {  // Hispanic x Relationship ranges (P10-like).
        p.factors[kHispanic] = IdentityBlock(2);
        p.factors[kRelationship] = RandomRangeSet(17, size / 2, &rng);
        break;
      }
      default: {  // Age ranges alone (median-age-support-like).
        p.factors[kAge] = RandomRangeSet(115, size, &rng);
        break;
      }
    }
    // Unmentioned attributes get Total.
    for (int i = 0; i < (with_state ? 6 : 5); ++i) {
      if (p.factors[static_cast<size_t>(i)].size() == 0) {
        p.factors[static_cast<size_t>(i)] =
            TotalBlock(domain.AttributeSize(i));
      }
    }
    // Odd sizes cannot split across Sex/Hispanic pairs: patterns 0 and 2
    // require even sizes, which the 130-query products satisfy.
    const int64_t state_rows = with_state ? state_factor.rows() : 1;
    HDMM_CHECK(p.NumQueries() == size * state_rows);
    w.AddProduct(std::move(p));
  }
  HDMM_CHECK(w.TotalQueries() ==
             4151 * (with_state ? state_factor.rows() : 1));
  return w;
}

}  // namespace

Domain CphDomain(bool include_state) {
  std::vector<std::string> names = {"hispanic", "sex", "race", "relationship",
                                    "age"};
  std::vector<int64_t> sizes = {2, 2, 64, 17, 115};
  if (include_state) {
    names.push_back("state");
    sizes.push_back(51);
  }
  return Domain(std::move(names), std::move(sizes));
}

UnionWorkload Sf1Workload() { return BuildSf1(Matrix()); }

UnionWorkload Sf1PlusWorkload() {
  // [Total; Identity] on State: national counts plus per-state grouping.
  Matrix state(52, 51);
  for (int64_t j = 0; j < 51; ++j) state(0, j) = 1.0;
  for (int64_t i = 0; i < 51; ++i) state(i + 1, i) = 1.0;
  return BuildSf1(state);
}

Domain AdultDomain() {
  return Domain({"age", "education", "race", "sex", "hours"},
                {75, 16, 5, 2, 20});
}

Domain CpsDomain() {
  return Domain({"income", "age", "marital", "race", "sex"},
                {100, 50, 7, 4, 2});
}

}  // namespace hdmm
