// The paper's motivating use case (Section 2): the Census of Population and
// Housing (CPH) schema and structured stand-ins for the SF1 / SF1+ workloads.
//
// The exact 4151 Census SF1 predicates are not published in machine-readable
// form; these generators reproduce their logical *shape* — a union of 32
// products over the CPH schema totalling exactly 4151 national queries, and
// the SF1+ extension that adds per-state grouping ([Total; Identity] on the
// State attribute, Example 5) for 215,852 queries total. See DESIGN.md,
// "Substitutions".
#ifndef HDMM_DATA_CENSUS_H_
#define HDMM_DATA_CENSUS_H_

#include "workload/domain.h"
#include "workload/workload.h"

namespace hdmm {

/// CPH Person schema: Hispanic(2) x Sex(2) x Race(64) x Relationship(17) x
/// Age(115), optionally extended with State(51). Domain sizes follow
/// Section 2 (500,480 cells national; 25,524,480 with State).
Domain CphDomain(bool include_state);

/// SF1 stand-in: 32 products, 4151 national-level predicate counting
/// queries. Defined over CphDomain(true) with Total on State.
UnionWorkload Sf1Workload();

/// SF1+ stand-in: the same 32 products with [Total; Identity] on State,
/// 4151 * 52 = 215,852 queries (Example 5).
UnionWorkload Sf1PlusWorkload();

/// Adult dataset schema (Section 8.1): age(75) x education(16) x race(5) x
/// sex(2) x hours-per-week(20).
Domain AdultDomain();

/// CPS dataset schema (Section 8.1): income(100) x age(50) x
/// marital-status(7) x race(4) x sex(2).
Domain CpsDomain();

}  // namespace hdmm

#endif  // HDMM_DATA_CENSUS_H_
