// CSV ingestion for datasets over multi-dimensional domains: the bridge from
// raw microdata files to the data vector x of Section 3.4. The expected file
// shape is one header row naming attributes (any order; a subset of the
// domain's attributes is rejected) followed by one row of integer attribute
// positions per record.
#ifndef HDMM_DATA_CSV_H_
#define HDMM_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "workload/domain.h"

namespace hdmm {

/// Parses CSV text into a Dataset over `domain`. The header must name every
/// domain attribute exactly once (column order is free; the domain gives the
/// canonical order). Values must be integers in [0, |dom(A)|). Returns false
/// and fills *error with a line-numbered message on any malformed content.
bool ParseCsvDataset(const std::string& text, const Domain& domain,
                     Dataset* out, std::string* error);

/// ParseCsvDataset from a file path.
bool LoadCsvDataset(const std::string& path, const Domain& domain,
                    Dataset* out, std::string* error);

/// Renders a dataset as CSV in domain attribute order (inverse of
/// ParseCsvDataset; one row per record, header included).
std::string WriteCsvDataset(const Dataset& dataset);

}  // namespace hdmm

#endif  // HDMM_DATA_CSV_H_
