#include "common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hdmm {

namespace {

int ThresholdFromEnv() {
  const char* env = std::getenv("HDMM_LOG");
  if (env == nullptr || *env == '\0') return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  std::fprintf(stderr,
               "[hdmm warn] HDMM_LOG=%s not one of error|warn|info|debug; "
               "using info\n",
               env);
  return static_cast<int>(LogLevel::kInfo);
}

const char* Tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

}  // namespace

std::atomic<int> Log::threshold_{ThresholdFromEnv()};

void Log::Write(LogLevel level, const char* format, ...) {
  // Compose the whole line first so one fprintf hits stderr atomically and
  // concurrent threads (pool workers, the serve loop) never interleave.
  char buffer[1024];
  int n = std::snprintf(buffer, sizeof(buffer), "[hdmm %s] ", Tag(level));
  if (n < 0) return;
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer + n, sizeof(buffer) - static_cast<size_t>(n), format,
                 args);
  va_end(args);
  std::fprintf(stderr, "%s\n", buffer);
}

}  // namespace hdmm
