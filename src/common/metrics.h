// Always-on serving metrics: named counters, gauges, and log-bucketed
// latency histograms, registered process-wide and snapshotted on demand.
// The serving tier (Engine, StrategyCache, BudgetAccountant, GramCache,
// ThreadPool, the optimizer) records into this registry unconditionally, so
// cache hit rates, budget spend, and per-phase latency tails are visible at
// runtime — `hdmm_cli serve` `stats`, `--stats-json`, BENCH_engine.json —
// instead of only by re-running offline benches.
//
// Cost model, following the failpoint pattern (common/failpoint.h): sites
// are compiled in ALWAYS, and the disabled path (HDMM_METRICS=off, or
// Metrics::SetEnabled(false)) is one relaxed atomic load and a
// predicted-taken branch — bench_engine's metrics arm gates it at ~1 ns.
// The enabled, uncontended path is barely slower: every metric shards its
// state across cache-line-padded per-thread slots, and a thread that owns
// its slot updates it with a plain relaxed load+store (no lock prefix, no
// RMW). Only when more threads than slots exist do the overflow threads
// share one slot through fetch_add. Snapshots merge the slots; they never
// stall writers.
//
// Usage at a site (the static local caches the registry lookup, so the
// steady-state cost is the slot update alone):
//
//   static Counter* const hits = Metrics::GetCounter("strategy_cache.hits");
//   hits->Add(1);
//
//   static Histogram* const lat = Metrics::GetHistogram("plan.latency_ns");
//   lat->Record(elapsed_ns);
//
// Metric objects are created on first lookup and never destroyed, so cached
// pointers stay valid for the life of the process. Names are dotted paths
// (`subsystem.metric`); the catalog lives in docs/observability.md.
#ifndef HDMM_COMMON_METRICS_H_
#define HDMM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

namespace hdmm {

namespace metrics_internal {

/// Per-thread slot assignment shared by every metric: thread i < kSlots - 1
/// owns slot i exclusively (single-writer, plain relaxed load+store);
/// later threads share the last slot and must use fetch_add.
constexpr int kSlots = 64;

struct SlotId {
  int index = 0;
  bool shared = false;
};

SlotId AssignSlotId();

inline const SlotId& ThisThreadSlot() {
  thread_local const SlotId id = AssignSlotId();
  return id;
}

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> value{0};
};

/// Registry-only constructor access (metric objects must be created through
/// Metrics::Get*, never directly — cached pointers rely on registry
/// ownership and process lifetime).
struct RegistryAccess;

}  // namespace metrics_internal

/// Monotonic event counter. Exact under any interleaving: exclusive slots
/// are single-writer, the shared overflow slot uses fetch_add.
class Counter {
 public:
  /// Inlined so the disabled path is the gate alone (one relaxed load and a
  /// predicted-taken branch, no call); defined after Metrics below.
  void Add(uint64_t n = 1);
  /// Sum over all slots (racy-consistent: concurrent adds may or may not be
  /// included, exactly like reading one atomic).
  uint64_t Value() const;

 private:
  friend class Metrics;
  friend struct metrics_internal::RegistryAccess;
  Counter() = default;
  void AddEnabled(uint64_t n);  // Slot update; out of line.
  void Reset();
  metrics_internal::PaddedU64 slots_[metrics_internal::kSlots];
};

/// Last-write-wins instantaneous value (budget remaining, degraded flags).
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Metrics;
  friend struct metrics_internal::RegistryAccess;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> value_{0.0};
};

/// Merged view of one histogram at snapshot time. Values are in whatever
/// unit was recorded (latency sites record nanoseconds; see the catalog).
/// Percentiles are estimated inside the matched power-of-two bucket by
/// geometric interpolation, so they are accurate to within the bucket's 2x
/// width — plenty for p50/p95/p99 tail tracking.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Lower bound of the lowest non-empty bucket.
  double max = 0.0;  ///< Upper bound of the highest non-empty bucket.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Log-bucketed (power-of-two) histogram of non-negative integer samples.
/// Bucket b holds values in [2^(b-1), 2^b); 64 buckets cover the full
/// uint64 range, so a nanosecond-scale latency site never saturates.
class Histogram {
 public:
  /// Inlined gate like Counter::Add; defined after Metrics below.
  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

  static constexpr int kBuckets = 64;

 private:
  friend class Metrics;
  friend struct metrics_internal::RegistryAccess;
  Histogram() = default;
  void RecordEnabled(uint64_t value);  // Slot update; out of line.
  void Reset();

  struct alignas(64) Slot {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kBuckets] = {};
  };
  Slot slots_[metrics_internal::kSlots];
};

/// Full registry snapshot: every metric by name, merged across slots.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class Metrics {
 public:
  /// Fast-path gate, inlined into every record site. Defaults to true
  /// ("always-on"); HDMM_METRICS=0|off|false disables recording at process
  /// start, SetEnabled flips it at runtime.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Looks up (creating on first use) the named metric. The returned
  /// pointer is valid for the life of the process — record sites cache it
  /// in a static local. A name must keep one metric type for the whole
  /// process; re-requesting it as a different type dies.
  static Counter* GetCounter(const std::string& name);
  static Gauge* GetGauge(const std::string& name);
  static Histogram* GetHistogram(const std::string& name);

  /// Merged values of every registered metric.
  static MetricsSnapshot Snapshot();

  /// Writes Snapshot() as JSON:
  ///
  ///   {"counters": {name: N, ...},
  ///    "gauges": {name: V, ...},
  ///    "histograms": {name: {"count": N, "sum": S, "min": m, "max": M,
  ///                          "p50": a, "p95": b, "p99": c}, ...}}
  ///
  /// This is the machine-readable stats schema shared by `hdmm_cli
  /// --stats-json`, the serve-mode `stats` command's JSON form, and the
  /// `"metrics"` section of BENCH_engine.json. `indent` spaces prefix every
  /// line so the object can be embedded in a larger document.
  static void WriteJson(std::FILE* f, int indent = 0);
  static std::string ToJson();

  /// Zeroes every metric's value in place. Registered pointers stay valid
  /// and keep their types; only the recorded values reset. For tests and
  /// benches that need a clean slate mid-process.
  static void ResetAllForTest();

 private:
  static std::atomic<bool> enabled_;
};

inline void Counter::Add(uint64_t n) {
  if (__builtin_expect(!Metrics::Enabled(), 0)) return;
  AddEnabled(n);
}

inline void Histogram::Record(uint64_t value) {
  if (__builtin_expect(!Metrics::Enabled(), 0)) return;
  RecordEnabled(value);
}

}  // namespace hdmm

#endif  // HDMM_COMMON_METRICS_H_
