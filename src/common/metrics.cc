#include "common/metrics.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "common/check.h"

namespace hdmm {

namespace metrics_internal {

SlotId AssignSlotId() {
  static std::atomic<int> next{0};
  const int n = next.fetch_add(1, std::memory_order_relaxed);
  SlotId id;
  if (n < kSlots - 1) {
    id.index = n;
    id.shared = false;
  } else {
    // Thread ids are never recycled, so a process that churns through more
    // threads than slots funnels the excess into the last slot, which is
    // updated with fetch_add instead of the single-writer fast path. The
    // persistent ThreadPool keeps real deployments far below the limit.
    id.index = kSlots - 1;
    id.shared = true;
  }
  return id;
}

}  // namespace metrics_internal

using metrics_internal::kSlots;
using metrics_internal::ThisThreadSlot;

// ---------------------------------------------------------------- counter --

void Counter::AddEnabled(uint64_t n) {
  const metrics_internal::SlotId& id = ThisThreadSlot();
  std::atomic<uint64_t>& slot = slots_[id.index].value;
  if (id.shared) {
    slot.fetch_add(n, std::memory_order_relaxed);
  } else {
    // Single-writer slot: a plain load+store relaxed pair is race-free and
    // avoids the locked RMW — this is the ~1 ns uncontended path.
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- histogram --

namespace {

// Bucket b holds [2^(b-1), 2^b): 0 -> bucket 0, 1 -> bucket 1, etc.
inline int BucketOf(uint64_t value) {
  if (value == 0) return 0;
  const int b = 64 - __builtin_clzll(value);
  // Values in [2^63, 2^64) would index bucket 64; fold them into the top
  // bucket (its reported upper bound saturates at 2^63).
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

inline double BucketLow(int b) {
  return b <= 0 ? 0.0 : std::ldexp(1.0, b - 1);
}

inline double BucketHigh(int b) { return std::ldexp(1.0, b); }

// Rank-r (1-based) order statistic estimate from merged bucket counts:
// find the bucket holding rank r, then interpolate geometrically inside it
// (log-bucketed data is closer to log-uniform than uniform within a bucket).
double PercentileFromBuckets(const uint64_t* buckets, uint64_t total,
                             double q) {
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cum + buckets[b];
    if (static_cast<double>(next) >= rank) {
      if (b == 0) return 0.0;
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(buckets[b]);
      // Geometric interpolation between the bucket bounds: low * 2^frac.
      return BucketLow(b) * std::exp2(frac);
    }
    cum = next;
  }
  return BucketHigh(Histogram::kBuckets - 1);
}

}  // namespace

void Histogram::RecordEnabled(uint64_t value) {
  const metrics_internal::SlotId& id = ThisThreadSlot();
  Slot& slot = slots_[id.index];
  const int b = BucketOf(value);
  if (id.shared) {
    slot.count.fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    slot.buckets[b].fetch_add(1, std::memory_order_relaxed);
  } else {
    slot.count.store(slot.count.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    slot.sum.store(slot.sum.load(std::memory_order_relaxed) + value,
                   std::memory_order_relaxed);
    slot.buckets[b].store(slot.buckets[b].load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  uint64_t merged[kBuckets] = {};
  HistogramSnapshot s;
  uint64_t sum = 0;
  for (const Slot& slot : slots_) {
    s.count += slot.count.load(std::memory_order_relaxed);
    sum += slot.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      merged[b] += slot.buckets[b].load(std::memory_order_relaxed);
    }
  }
  s.sum = static_cast<double>(sum);
  if (s.count == 0) return s;
  for (int b = 0; b < kBuckets; ++b) {
    if (merged[b] != 0) {
      s.min = BucketLow(b);
      break;
    }
  }
  for (int b = kBuckets - 1; b >= 0; --b) {
    if (merged[b] != 0) {
      s.max = BucketHigh(b);
      break;
    }
  }
  s.p50 = PercentileFromBuckets(merged, s.count, 0.50);
  s.p95 = PercentileFromBuckets(merged, s.count, 0.95);
  s.p99 = PercentileFromBuckets(merged, s.count, 0.99);
  return s;
}

void Histogram::Reset() {
  for (Slot& slot : slots_) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0, std::memory_order_relaxed);
    for (auto& b : slot.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- registry --

namespace metrics_internal {

struct RegistryAccess {
  static Counter* NewCounter() { return new Counter(); }
  static Gauge* NewGauge() { return new Gauge(); }
  static Histogram* NewHistogram() { return new Histogram(); }
};

}  // namespace metrics_internal

namespace {

enum class MetricType { kCounter, kGauge, kHistogram };

struct Entry {
  MetricType type;
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
};

struct Registry {
  std::mutex mu;
  // Metric objects are heap-allocated once and never freed: record sites
  // cache raw pointers in static locals, so entries must outlive everything.
  std::unordered_map<std::string, Entry> entries;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

Entry& LookupOrCreate(const std::string& name, MetricType type) {
  HDMM_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.entries.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.type = type;
    switch (type) {
      case MetricType::kCounter:
        entry.counter = metrics_internal::RegistryAccess::NewCounter();
        break;
      case MetricType::kGauge:
        entry.gauge = metrics_internal::RegistryAccess::NewGauge();
        break;
      case MetricType::kHistogram:
        entry.histogram = metrics_internal::RegistryAccess::NewHistogram();
        break;
    }
  }
  HDMM_CHECK_MSG(entry.type == type,
                 "metric name already registered with a different type");
  return entry;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  } else {
    // JSON has no inf/nan literal; null keeps the document parseable.
    std::snprintf(buf, sizeof(buf), "null");
  }
  *out += buf;
}

}  // namespace

std::atomic<bool> Metrics::enabled_{[] {
  const char* env = std::getenv("HDMM_METRICS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0);
}()};

Counter* Metrics::GetCounter(const std::string& name) {
  return LookupOrCreate(name, MetricType::kCounter).counter;
}

Gauge* Metrics::GetGauge(const std::string& name) {
  return LookupOrCreate(name, MetricType::kGauge).gauge;
}

Histogram* Metrics::GetHistogram(const std::string& name) {
  return LookupOrCreate(name, MetricType::kHistogram).histogram;
}

MetricsSnapshot Metrics::Snapshot() {
  // Collect stable pointers under the lock, read values outside it: metric
  // reads are relaxed atomics, so a snapshot never blocks record sites.
  std::map<std::string, Counter*> counters;
  std::map<std::string, Gauge*> gauges;
  std::map<std::string, Histogram*> histograms;
  {
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& [name, entry] : registry.entries) {
      switch (entry.type) {
        case MetricType::kCounter:
          counters[name] = entry.counter;
          break;
        case MetricType::kGauge:
          gauges[name] = entry.gauge;
          break;
        case MetricType::kHistogram:
          histograms[name] = entry.histogram;
          break;
      }
    }
  }
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

std::string Metrics::ToJson() {
  const MetricsSnapshot s = Snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : s.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : s.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": ";
    AppendDouble(&out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonString(&out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": ";
    AppendDouble(&out, h.sum);
    out += ", \"min\": ";
    AppendDouble(&out, h.min);
    out += ", \"max\": ";
    AppendDouble(&out, h.max);
    out += ", \"p50\": ";
    AppendDouble(&out, h.p50);
    out += ", \"p95\": ";
    AppendDouble(&out, h.p95);
    out += ", \"p99\": ";
    AppendDouble(&out, h.p99);
    out += "}";
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

void Metrics::WriteJson(std::FILE* f, int indent) {
  const std::string json = ToJson();
  if (indent <= 0) {
    std::fwrite(json.data(), 1, json.size(), f);
    return;
  }
  const std::string pad(static_cast<size_t>(indent), ' ');
  size_t start = 0;
  bool first_line = true;
  while (start <= json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    // The first line lands where the caller already wrote its key.
    if (!first_line) std::fwrite(pad.data(), 1, pad.size(), f);
    first_line = false;
    std::fwrite(json.data() + start, 1, end - start, f);
    if (end < json.size()) std::fputc('\n', f);
    start = end + 1;
  }
}

void Metrics::ResetAllForTest() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& [name, entry] : registry.entries) {
    (void)name;
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->Reset();
        break;
      case MetricType::kGauge:
        entry.gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

}  // namespace hdmm
