// 64-bit FNV-1a content hashing, shared by the serving layer's plan
// fingerprints (engine/fingerprint) and the optimizer layer's Gram-cache
// keys (core/gram_cache). Fast, dependency-free, and stable across
// platforms; callers tolerate the 64-bit collision odds (a collision can
// only alias two keys, never corrupt a stored value), so a cryptographic
// hash is not needed.
#ifndef HDMM_COMMON_HASH_H_
#define HDMM_COMMON_HASH_H_

#include <cstdint>
#include <cstring>

namespace hdmm {

/// Incremental FNV-1a hasher over raw bytes with typed convenience feeds.
class Fnv1aHasher {
 public:
  static constexpr uint64_t kOffset = 1469598103934665603ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;

  void Bytes(const void* data, size_t n) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
  }

  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void I32(int v) { I64(v); }
  void Bool(bool v) { U64(v ? 1 : 0); }

  /// Doubles are hashed by bit pattern with -0.0 canonicalized to 0.0 so the
  /// two representations of zero (which are numerically interchangeable
  /// everywhere in the library) cannot split a cache.
  void F64(double v) {
    if (v == 0.0) v = 0.0;  // Collapses -0.0.
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = kOffset;
};

}  // namespace hdmm

#endif  // HDMM_COMMON_HASH_H_
