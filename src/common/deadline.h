// Deadlines and cooperative cancellation for long-running serving work.
//
// A cold plan takes ~0.5 s (BENCH_planner.json); an overloaded server must
// be able to shed it *before* privacy budget is spent. Nothing here
// preempts: computation loops (L-BFGS-B iterations, restart fan-out jobs,
// AnswerBatch shards) poll a CancelToken at natural yield points and return
// kDeadlineExceeded with no side effects. The token is plumbed as a raw
// `const CancelToken*` (nullptr == never stop) so options structs stay
// copyable and plan fingerprints — which hash option *fields*, never this
// pointer — are unaffected.
#ifndef HDMM_COMMON_DEADLINE_H_
#define HDMM_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace hdmm {

/// A point on the steady clock, or "never". Value type; cheap to copy.
class Deadline {
 public:
  /// Default: infinite — never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (clamped below at "already expired"
  /// for negative input).
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return !has_deadline_; }

  bool Expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds until expiry, clamped at 0. A large sentinel (one day)
  /// when infinite, so callers can min() against it safely.
  int64_t RemainingMillis() const {
    if (!has_deadline_) return 86400000;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left.count() : 0;
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Cancellation flag + optional deadline, polled cooperatively. Thread-safe:
/// any thread may Cancel(); worker threads poll ShouldStop(). Not copyable —
/// share by pointer; the creating frame owns it and must outlive the work.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(Deadline deadline) : deadline_(deadline) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called or the deadline passed. Safe (and cheap,
  /// one relaxed load + one clock read) to poll every loop iteration.
  bool ShouldStop() const {
    return cancelled_.load(std::memory_order_relaxed) || deadline_.Expired();
  }

  /// kOk while running; kDeadlineExceeded once stopped. The message says
  /// which trigger fired so serve replies can distinguish a client cancel
  /// from a blown deadline.
  Status StopStatus() const;

  const Deadline& deadline() const { return deadline_; }

 private:
  std::atomic<bool> cancelled_{false};
  Deadline deadline_{};
};

/// True when `cancel` is non-null and signalled — the form the hot loops use
/// so the disabled path is a single null compare.
inline bool CancelRequested(const CancelToken* cancel) {
  return cancel != nullptr && cancel->ShouldStop();
}

}  // namespace hdmm

#endif  // HDMM_COMMON_DEADLINE_H_
