// Scoped tracing with Chrome trace-event export. Spans are RAII objects
// recorded into per-thread ring buffers and exported as Chrome trace-event
// JSON (the `chrome://tracing` / Perfetto format), so one `HDMM_TRACE=<file>`
// environment variable turns any binary — `hdmm_cli serve`, a bench, a test —
// into a timeline of Plan/Measure/AnswerBatch phases across the thread pool,
// with zero recompilation.
//
//   HDMM_TRACE=/tmp/serve.trace hdmm_cli serve --workload w --data d.csv
//   # ... session ...
//   # open /tmp/serve.trace in https://ui.perfetto.dev
//
// Cost model mirrors failpoints and metrics: spans are compiled in always,
// and the disabled path is one relaxed atomic load per span (the
// constructor's gate; the destructor then sees a null name and does
// nothing). Enabled spans cost two steady-clock reads and one ring-buffer
// store — no locks, no allocation after a thread's first span.
//
// Usage:
//
//   void Engine::Plan(...) {
//     HDMM_TRACE_SPAN("Engine::Plan");
//     ...
//   }  // Span closes when the scope exits.
//
// Buffers are rings: when a thread records more than kRingCapacity spans
// between flushes the oldest are overwritten (the drop count is exported in
// the trace metadata). Flushing is cooperative — Trace::Stop() or process
// exit (atexit) writes the file; there is no background thread.
#ifndef HDMM_COMMON_TRACE_H_
#define HDMM_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace hdmm {

class Trace {
 public:
  /// Fast-path gate, inlined into every span constructor.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts collecting spans; Stop() (or process exit) writes them to
  /// `path` as Chrome trace-event JSON. Returns false (with *error) when
  /// already collecting.
  static bool Start(const std::string& path, std::string* error = nullptr);

  /// Stops collecting and writes the trace file. Returns false (with
  /// *error) when the file cannot be written. No-op when not collecting.
  static bool Stop(std::string* error = nullptr);

  /// Writes the collected spans without stopping. Each flush rewrites the
  /// whole file, so the latest call wins.
  static bool Flush(std::string* error = nullptr);

  /// Names the calling thread in the exported trace ("main",
  /// "hdmm-worker-3"). Threads that never call this show up by numeric id.
  static void SetThreadName(const std::string& name);

  /// Spans recorded since Start() across all threads (approximate under
  /// concurrency; for tests).
  static uint64_t RecordedSpans();

  /// Monotonic nanoseconds since process start (the trace timebase).
  static int64_t NowNs();

 private:
  friend class TraceSpan;
  static void Emit(const char* name, int64_t start_ns, int64_t end_ns);
  static std::atomic<bool> enabled_;
};

/// RAII span. The name must be a string literal (or otherwise outlive the
/// trace session): only the pointer is stored on the hot path.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (__builtin_expect(Trace::Enabled(), 0)) {
      name_ = name;
      start_ns_ = Trace::NowNs();
    }
  }
  ~TraceSpan() {
    if (__builtin_expect(name_ != nullptr, 0)) {
      Trace::Emit(name_, start_ns_, Trace::NowNs());
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

#define HDMM_TRACE_CONCAT2(a, b) a##b
#define HDMM_TRACE_CONCAT(a, b) HDMM_TRACE_CONCAT2(a, b)
#define HDMM_TRACE_SPAN(name) \
  ::hdmm::TraceSpan HDMM_TRACE_CONCAT(hdmm_trace_span_, __COUNTER__)(name)

}  // namespace hdmm

#endif  // HDMM_COMMON_TRACE_H_
