// Persistent work-stealing thread pool shared by every parallel kernel in the
// library. Threads are spawned once (lazily, on first use) and live for the
// whole process; hot paths submit closures instead of constructing
// std::thread per call, which the profile showed costing more than the actual
// arithmetic for mid-sized operands.
#ifndef HDMM_COMMON_THREAD_POOL_H_
#define HDMM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hdmm {

/// Fixed-size pool of worker threads with per-worker deques and work
/// stealing. The calling thread participates in execution while it waits, so
/// a pool with W workers runs parallel sections W+1 wide.
///
/// Nested parallel sections (a task body invoking ParallelFor again) run
/// serially inside the calling task: the pool never blocks a worker on work
/// that only another worker could run, so there is no deadlock and no thread
/// explosion.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (>= 0). Most callers should use
  /// Global() instead of constructing their own pool.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Parallelism width: workers plus the participating caller.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs body(b, e) over a partition of [begin, end) across the pool and
  /// blocks until every chunk has finished. Chunks hold at least `grain`
  /// iterations; ranges smaller than 2 * grain, pools with no workers, and
  /// nested calls from inside a pool task all run body(begin, end) serially
  /// on the calling thread.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// True when called from inside a pool task (used to serialize nesting).
  static bool InWorker();

  /// Process-wide shared pool. Sized, in priority order, from
  /// SetGlobalThreads, the HDMM_THREADS / HDMM_NUM_THREADS environment
  /// variables (total thread count, caller included), or
  /// std::thread::hardware_concurrency(). Never destroyed.
  static ThreadPool& Global();

  /// Pins the global pool's total thread count (callers of Global() see
  /// `num_threads() == n`). Must be called before the first Global() use —
  /// the pool is created once and never resized; dies otherwise. This is
  /// the hook behind `hdmm_cli --threads N`.
  static void SetGlobalThreads(int n);

 private:
  struct TaskGroup;
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(size_t index);
  void Push(Task task);
  bool TryPop(size_t preferred, Task* out);
  void RunTask(Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> pending_{0};
  std::atomic<uint64_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
};

/// The pool the dense compute kernels (GEMM, Cholesky, kron, eigensolver,
/// batched answering) fan out on: ThreadPool::Global() unless an override is
/// installed. The indirection exists so benches and tests can run the same
/// kernels on pools of different widths within one process — thread-count
/// scaling arms, and the kernel thread-invariance tests — without paying a
/// process restart per arm.
ThreadPool& ComputePool();

/// Installs (or, with nullptr, removes) a compute-pool override. Bench/test
/// knob — not synchronized against in-flight kernels; quiesce all parallel
/// work before switching, and restore nullptr before the pool dies.
void SetComputePool(ThreadPool* pool);

/// The pool optimizer restart fan-out runs on: ThreadPool::Global() unless a
/// test override is installed. The indirection exists so the planner
/// determinism tests can run the same optimization on pools of different
/// widths within one process and compare results bit-for-bit.
ThreadPool& RestartPool();

/// Installs (or, with nullptr, removes) a restart-pool override. Test-only;
/// not synchronized against concurrent optimizer calls.
void SetRestartPoolForTest(ThreadPool* pool);

}  // namespace hdmm

#endif  // HDMM_COMMON_THREAD_POOL_H_
