// Tiny leveled stderr logger. Serve mode writes replies to stdout and
// diagnostics to stderr; every stderr line in src/ goes through HDMM_LOG so
// concurrent threads never interleave partial lines (each log call is one
// buffered fprintf) and operators can silence or amplify diagnostics with
// one environment variable:
//
//   HDMM_LOG=error|warn|info|debug   (default: info)
//
// Lines look like `[hdmm warn] strategy cache degraded: ...`. There is no
// timestamping or file rotation — this is a library logger, not a daemon's.
#ifndef HDMM_COMMON_LOG_H_
#define HDMM_COMMON_LOG_H_

#include <atomic>

namespace hdmm {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

class Log {
 public:
  /// True when `level` would be emitted under the current threshold.
  static bool Enabled(LogLevel level) {
    return static_cast<int>(level) <=
           threshold_.load(std::memory_order_relaxed);
  }

  /// Threshold control; initialized from HDMM_LOG at process start.
  static void SetLevel(LogLevel level) {
    threshold_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static LogLevel Level() {
    return static_cast<LogLevel>(threshold_.load(std::memory_order_relaxed));
  }

  /// printf-style emission; appends the trailing newline itself. Prefer the
  /// HDMM_LOG macro, which skips argument evaluation when disabled.
  static void Write(LogLevel level, const char* format, ...)
      __attribute__((format(printf, 2, 3)));

 private:
  static std::atomic<int> threshold_;
};

/// HDMM_LOG(Warn, "disk tier degraded: %s", error.c_str());
#define HDMM_LOG(level, ...)                                         \
  do {                                                               \
    if (::hdmm::Log::Enabled(::hdmm::LogLevel::k##level)) {          \
      ::hdmm::Log::Write(::hdmm::LogLevel::k##level, __VA_ARGS__);   \
    }                                                                \
  } while (0)

}  // namespace hdmm

#endif  // HDMM_COMMON_LOG_H_
