// Wall-clock timer for the scalability experiments (Figures 1, 5, 6).
#ifndef HDMM_COMMON_TIMER_H_
#define HDMM_COMMON_TIMER_H_

#include <chrono>

namespace hdmm {

/// Simple monotonic wall-clock timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hdmm

#endif  // HDMM_COMMON_TIMER_H_
