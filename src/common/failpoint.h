// Named failpoints for fault injection, in the spirit of RocksDB's
// fault-injection/SyncPoint testing. A failpoint is a named site in
// production code where a test (or an operator, via the HDMM_FAILPOINTS
// environment variable) can inject an environmental failure — an I/O error,
// simulated lock contention, or a hard crash — so recovery paths are
// exercised systematically instead of waiting for a real disk to fail.
//
// Sites are compiled in ALWAYS. The fast path when nothing is active is one
// relaxed atomic load and a predicted-not-taken branch (measured in
// bench_engine's failpoint arm at well under a nanosecond), so there is no
// special build flavor whose recovery behavior differs from production's.
//
// Usage at a site:
//
//   if (HDMM_FAILPOINT("strategy_cache.put.io_error")) {
//     return Status::IoError("injected: strategy_cache.put.io_error");
//   }
//
// Crash sites additionally register themselves so harnesses can enumerate
// every crash point without hard-coding names:
//
//   HDMM_REGISTER_CRASH_SITE("accountant.append.torn");
//   ...
//   if (HDMM_FAILPOINT("accountant.append.torn")) {
//     /* write a partial record to simulate a torn append */
//     Failpoints::CrashNow();
//   }
//
// Activation specs (comma-separated in HDMM_FAILPOINTS, or one per
// Failpoints::Activate call):
//
//   name=always     fire on every hit
//   name=nth:N      fire on the Nth hit only (1-based)
//   name=times:N    fire on hits 1..N
//   name=after:N    fire on every hit after the first N
//   name=prob:P     fire with probability P (deterministic per-point stream)
//   name=crash      SIGKILL the process at the 1st hit
//   name=crash:N    SIGKILL the process at the Nth hit
//   name=off        registered but never fires (hit counting only)
//
// `crash` specs kill inside Hit(); every other spec makes Hit() return true
// and leaves the failure behavior to the site.
#ifndef HDMM_COMMON_FAILPOINT_H_
#define HDMM_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hdmm {

class Failpoints {
 public:
  /// Fast-path gate: true when any failpoint is active anywhere in the
  /// process. Inline relaxed load — the entire cost of a disabled site.
  static bool Enabled() {
    return active_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path, reached only while some failpoint is active: returns true
  /// when the named point fires on this hit. Crash-spec points do not
  /// return — they SIGKILL the process. Unknown/inactive names return
  /// false.
  static bool Hit(const char* name);

  /// Activates `name` with a `mode` from the spec grammar above. Returns
  /// false (with *error) on a malformed mode.
  static bool Activate(const std::string& name, const std::string& mode,
                       std::string* error = nullptr);

  /// Activates a comma-separated "name=mode,name=mode" spec (the
  /// HDMM_FAILPOINTS format).
  static bool ActivateSpec(const std::string& spec,
                           std::string* error = nullptr);

  static void Deactivate(const std::string& name);
  static void DeactivateAll();

  /// Hits observed by an active point since activation (0 for unknown
  /// names). Fired or not — this counts arrivals at the site.
  static uint64_t HitCount(const std::string& name);

  /// Simulates a hard crash: SIGKILL to self, so no destructors, no atexit,
  /// no stream flushing — userspace buffers die exactly as in a power loss.
  [[noreturn]] static void CrashNow();

  /// Every crash site registered via HDMM_REGISTER_CRASH_SITE, in
  /// registration order. Crash-consistency harnesses iterate this so a new
  /// crash point is automatically covered.
  static std::vector<std::string> CrashSites();

 private:
  friend struct CrashSiteRegistrar;
  static std::atomic<int> active_count_;
};

#define HDMM_FAILPOINT(name)                                   \
  (__builtin_expect(::hdmm::Failpoints::Enabled(), 0) &&       \
   ::hdmm::Failpoints::Hit(name))

/// Registers a crash site name at static-initialization time.
struct CrashSiteRegistrar {
  explicit CrashSiteRegistrar(const char* name);
};

#define HDMM_CRASH_SITE_CONCAT2(a, b) a##b
#define HDMM_CRASH_SITE_CONCAT(a, b) HDMM_CRASH_SITE_CONCAT2(a, b)
#define HDMM_REGISTER_CRASH_SITE(name)            \
  static const ::hdmm::CrashSiteRegistrar         \
      HDMM_CRASH_SITE_CONCAT(hdmm_crash_site_, __COUNTER__)(name)

}  // namespace hdmm

#endif  // HDMM_COMMON_FAILPOINT_H_
