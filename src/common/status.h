// Recoverable-error channel for the serving tier. The library does not use
// exceptions (Google C++ style); until now every failure aborted through
// HDMM_CHECK. That is right for programmer errors — a shape mismatch is a
// bug, and continuing would compute garbage — but wrong for *environmental*
// failures: a corrupt cache file, a contended ledger lock, a full disk, or
// an over-budget request are conditions a long-lived serving process must
// survive, especially once it holds measured sessions whose privacy budget
// has already been spent (the paper's one-shot measurement model makes a
// lost session unrecoverable).
//
// The split:
//
//   HDMM_CHECK        contract violations — still abort.
//   Status/StatusOr   environmental failures — returned to the caller, who
//                     degrades, retries, quarantines, or reports.
#ifndef HDMM_COMMON_STATUS_H_
#define HDMM_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace hdmm {

/// Coarse classification of an environmental failure; the message carries
/// the specifics. Codes are what callers branch on (a kCorruption from the
/// cache means "quarantine and replan"; a kContention from the accountant
/// means "back off and retry").
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< Malformed external input (user command, file field).
  kNotFound,            ///< The named resource does not exist.
  kIoError,             ///< The environment failed us: read/write/sync/rename.
  kCorruption,          ///< Data present but unparseable or inconsistent.
  kContention,          ///< A lock or resource is held elsewhere; retryable.
  kOverBudget,          ///< The privacy budget cannot cover the charge.
  kFailedPrecondition,  ///< Valid request, wrong state/configuration for it.
  kUnavailable,         ///< A subsystem degraded itself out of service.
  kResourceExhausted,   ///< Admission refused: capacity budget is full; retryable.
  kDeadlineExceeded,    ///< The caller's deadline passed or it cancelled; retryable.
};

const char* StatusCodeName(StatusCode code);

/// True for codes a well-behaved client should retry (possibly after the
/// interval suggested by RetryAfterMillis): the condition is transient and
/// re-sending the identical request later can succeed. Everything else is
/// fatal for that request — retrying verbatim would fail the same way.
bool IsRetryable(StatusCode code);

class Status {
 public:
  /// Default is OK (so `Status s; ... return s;` reads naturally).
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status Contention(std::string message) {
    return Status(StatusCode::kContention, std::move(message));
  }
  static Status OverBudget(std::string message) {
    return Status(StatusCode::kOverBudget, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CODE: message" ("OK" when ok) — the form error replies and logs use.
  std::string ToString() const;

  /// Same code, message prefixed with "context: " — layers call-site
  /// context onto a propagated status. OK statuses pass through untouched.
  Status Annotated(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Status carries no structured payload, so retryable refusals embed their
/// suggested backoff in the message as a trailing "retry_after_ms=N" clause.
/// WithRetryAfter writes it; RetryAfterMillis recovers it (-1 when absent).
/// The serve reply protocol forwards the clause verbatim so clients never
/// need to parse free-form prose.
Status WithRetryAfter(Status status, int retry_after_ms);
int RetryAfterMillis(const Status& status);

/// Either a value or the non-OK Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a non-OK Status (returning `Status::IoError(...)` from a
  /// StatusOr function just works). An OK status with no value is a
  /// contract violation.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    HDMM_CHECK_MSG(!status_.ok(), "StatusOr constructed from an OK status");
  }

  /// Implicit from a value.
  StatusOr(T value)  // NOLINT
      : has_value_(true), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The held value; dies when !ok() — check first.
  const T& value() const& {
    HDMM_CHECK_MSG(has_value_, "StatusOr::value() on an error status");
    return value_;
  }
  T& value() & {
    HDMM_CHECK_MSG(has_value_, "StatusOr::value() on an error status");
    return value_;
  }
  T&& value() && {
    HDMM_CHECK_MSG(has_value_, "StatusOr::value() on an error status");
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff has_value_.
  bool has_value_ = false;
  T value_{};
};

/// Early-returns the evaluated Status when it is not OK.
#define HDMM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::hdmm::Status hdmm_status_tmp_ = (expr);       \
    if (!hdmm_status_tmp_.ok()) return hdmm_status_tmp_; \
  } while (0)

}  // namespace hdmm

#endif  // HDMM_COMMON_STATUS_H_
