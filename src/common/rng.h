// Seeded random number generation, including the Laplace sampler used by the
// Laplace mechanism (Definition 6 of the paper).
#ifndef HDMM_COMMON_RNG_H_
#define HDMM_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace hdmm {

/// Deterministic, seedable random source. All randomized components of the
/// library (strategy initialization, noise, synthetic data) draw from an Rng
/// passed in by the caller so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : seed_(seed), gen_(seed) {}

  /// Forks an independent child stream, SplitMix64-style: the child's seed
  /// is derived from the parent's *original* seed, a per-parent fork
  /// counter, and the caller-supplied stream id — never from how far the
  /// parent's own sequence has advanced. Parallel restarts that each draw
  /// from a fork therefore see the same streams no matter which thread runs
  /// them (or in what order), which is what makes optimizer results
  /// bit-identical at any thread count. Successive Fork calls on the same
  /// parent yield distinct streams even for equal `stream` ids.
  Rng Fork(uint64_t stream);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal sample.
  double Gaussian();

  /// Zero-mean Laplace sample with scale `b` (variance 2b^2).
  double Laplace(double b);

  /// Vector of `n` iid Laplace(b) samples.
  std::vector<double> LaplaceVector(int64_t n, double b);

  /// Rademacher (+1/-1) vector, used by the Hutchinson trace estimator.
  std::vector<double> RademacherVector(int64_t n);

  /// Uniform random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return gen_; }

 private:
  uint64_t seed_;
  uint64_t fork_epoch_ = 0;  ///< Number of Fork calls made on this instance.
  std::mt19937_64 gen_;
};

}  // namespace hdmm

#endif  // HDMM_COMMON_RNG_H_
