// Seeded random number generation, including the Laplace sampler used by the
// Laplace mechanism (Definition 6 of the paper).
#ifndef HDMM_COMMON_RNG_H_
#define HDMM_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace hdmm {

/// Deterministic, seedable random source. All randomized components of the
/// library (strategy initialization, noise, synthetic data) draw from an Rng
/// passed in by the caller so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal sample.
  double Gaussian();

  /// Zero-mean Laplace sample with scale `b` (variance 2b^2).
  double Laplace(double b);

  /// Vector of `n` iid Laplace(b) samples.
  std::vector<double> LaplaceVector(int64_t n, double b);

  /// Rademacher (+1/-1) vector, used by the Hutchinson trace estimator.
  std::vector<double> RademacherVector(int64_t n);

  /// Uniform random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace hdmm

#endif  // HDMM_COMMON_RNG_H_
