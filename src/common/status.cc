#include "common/status.h"

namespace hdmm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kContention:
      return "CONTENTION";
    case StatusCode::kOverBudget:
      return "OVER_BUDGET";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kContention:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

namespace {

constexpr char kRetryAfterKey[] = "retry_after_ms=";

Status WithMessage(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kIoError:
      return Status::IoError(std::move(message));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(message));
    case StatusCode::kContention:
      return Status::Contention(std::move(message));
    case StatusCode::kOverBudget:
      return Status::OverBudget(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
  }
  return Status::IoError(std::move(message));
}

}  // namespace

Status WithRetryAfter(Status status, int retry_after_ms) {
  if (status.ok()) return status;
  if (retry_after_ms < 0) retry_after_ms = 0;
  std::string message = status.message();
  if (!message.empty()) message += " ";
  message += kRetryAfterKey;
  message += std::to_string(retry_after_ms);
  return WithMessage(status.code(), std::move(message));
}

int RetryAfterMillis(const Status& status) {
  const std::string& message = status.message();
  const size_t pos = message.rfind(kRetryAfterKey);
  if (pos == std::string::npos) return -1;
  size_t i = pos + sizeof(kRetryAfterKey) - 1;
  if (i >= message.size() || message[i] < '0' || message[i] > '9') return -1;
  long value = 0;
  for (; i < message.size() && message[i] >= '0' && message[i] <= '9'; ++i) {
    value = value * 10 + (message[i] - '0');
    if (value > 86400000) return 86400000;  // cap at a day; hints, not law
  }
  return static_cast<int>(value);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hdmm
