#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace hdmm {
namespace {

thread_local bool tls_in_pool_task = false;

// SetGlobalThreads request and a created-flag guarding against requests that
// arrive after the (unresizable) global pool already exists.
std::atomic<int> g_requested_threads{0};
std::atomic<bool> g_global_created{false};

// Test-only override routing optimizer restart fan-out to a custom pool.
std::atomic<ThreadPool*> g_restart_pool_override{nullptr};

// Bench/test override routing the dense compute kernels to a custom pool.
std::atomic<ThreadPool*> g_compute_pool_override{nullptr};

int GlobalThreadCount() {
  const int requested = g_requested_threads.load(std::memory_order_acquire);
  if (requested >= 1) return requested;
  // HDMM_THREADS is the documented knob (mirrors the CLI's --threads);
  // HDMM_NUM_THREADS is kept as the original spelling.
  for (const char* name : {"HDMM_THREADS", "HDMM_NUM_THREADS"}) {
    if (const char* env = std::getenv(name)) {
      int n = std::atoi(env);
      if (n >= 1) return n;
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

// Completion state for one ParallelFor call. Tasks from different concurrent
// calls can interleave freely in the queues; each decrements its own group.
// Deliberately just an atomic: the final fetch_sub is the last access a
// worker ever makes to the group, so the caller may destroy it the moment it
// observes zero. A mutex/cv handshake here would reintroduce a
// use-after-free window between the worker's decrement and its notify.
struct ThreadPool::TaskGroup {
  std::atomic<int64_t> remaining{0};
};

ThreadPool::ThreadPool(int num_workers) {
  HDMM_CHECK(num_workers >= 0);
  queues_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i)
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InWorker() { return tls_in_pool_task; }

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: workers may still be parked in ParallelFor epilogues
  // when static destructors run, and the pool must outlive all of them.
  static ThreadPool* pool = [] {
    g_global_created.store(true, std::memory_order_release);
    return new ThreadPool(GlobalThreadCount() - 1);
  }();
  return *pool;
}

void ThreadPool::SetGlobalThreads(int n) {
  HDMM_CHECK_MSG(n >= 1, "SetGlobalThreads needs n >= 1");
  HDMM_CHECK_MSG(!g_global_created.load(std::memory_order_acquire),
                 "SetGlobalThreads must run before the global pool is first "
                 "used (the pool is created once and never resized)");
  g_requested_threads.store(n, std::memory_order_release);
}

ThreadPool& ComputePool() {
  ThreadPool* override_pool =
      g_compute_pool_override.load(std::memory_order_acquire);
  return override_pool != nullptr ? *override_pool : ThreadPool::Global();
}

void SetComputePool(ThreadPool* pool) {
  g_compute_pool_override.store(pool, std::memory_order_release);
}

ThreadPool& RestartPool() {
  ThreadPool* override_pool =
      g_restart_pool_override.load(std::memory_order_acquire);
  return override_pool != nullptr ? *override_pool : ThreadPool::Global();
}

void SetRestartPoolForTest(ThreadPool* pool) {
  g_restart_pool_override.store(pool, std::memory_order_release);
}

void ThreadPool::Push(Task task) {
  const size_t q = static_cast<size_t>(
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size());
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Lock/unlock orders this increment against a worker's predicate check;
  // notifying without it can race into the window between a worker
  // evaluating the predicate and parking, losing the wakeup for good.
  { std::lock_guard<std::mutex> lock(sleep_mutex_); }
  sleep_cv_.notify_one();
}

bool ThreadPool::TryPop(size_t preferred, Task* out) {
  const size_t n = queues_.size();
  for (size_t attempt = 0; attempt < n; ++attempt) {
    WorkerQueue& q = *queues_[(preferred + attempt) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    if (attempt == 0) {  // Own queue: LIFO end for locality.
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
    } else {  // Steal from the FIFO end of a victim queue.
      *out = std::move(q.tasks.front());
      q.tasks.pop_front();
      static Counter* const steals =
          Metrics::GetCounter("thread_pool.steals");
      steals->Add(1);
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(Task& task) {
  static Counter* const tasks = Metrics::GetCounter("thread_pool.tasks");
  tasks->Add(1);
  tls_in_pool_task = true;
  task.fn();
  tls_in_pool_task = false;
  task.group->remaining.fetch_sub(1, std::memory_order_acq_rel);
}

void ThreadPool::WorkerLoop(size_t index) {
  Trace::SetThreadName("hdmm-worker-" + std::to_string(index));
  // Spin briefly before parking: kernels issue many back-to-back short
  // parallel sections (one per GEMM panel pass), and a cv wakeup can cost
  // milliseconds under a busy hypervisor — longer than the section itself.
  // A worker that stays runnable across the gap picks the next section's
  // tasks up in microseconds.
  constexpr int kSpinRounds = 4096;
  Task task;
  while (true) {
    bool ran = false;
    for (int spin = 0; spin < kSpinRounds; ++spin) {
      if (pending_.load(std::memory_order_acquire) > 0 &&
          TryPop(index, &task)) {
        RunTask(task);
        ran = true;
        break;
      }
      if (stop_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
    if (ran) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  if (workers_.empty() || tls_in_pool_task || n < 2 * grain) {
    body(begin, end);
    return;
  }

  // Cap the chunk count so scheduling overhead stays bounded while leaving
  // enough slack (4x) for stealing to balance uneven chunks.
  const int64_t max_chunks = int64_t{4} * num_threads();
  const int64_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  const int64_t num_chunks = (n + chunk - 1) / chunk;

  TaskGroup group;
  group.remaining.store(num_chunks, std::memory_order_relaxed);
  for (int64_t c = 1; c < num_chunks; ++c) {
    const int64_t b = begin + c * chunk;
    const int64_t e = std::min(end, b + chunk);
    Push(Task{[&body, b, e] { body(b, e); }, &group});
  }
  // The caller runs the first chunk itself, then helps drain queues until its
  // group completes. It may execute tasks from unrelated concurrent groups
  // while it waits; that only speeds overall progress.
  Task first{[&body, begin, chunk, end] {
               body(begin, std::min(end, begin + chunk));
             },
             &group};
  RunTask(first);
  Task stolen;
  int idle_spins = 0;
  while (group.remaining.load(std::memory_order_acquire) > 0) {
    if (TryPop(0, &stolen)) {
      RunTask(stolen);
      idle_spins = 0;
      continue;
    }
    // Tail of the section: the last chunks are in flight on workers and
    // usually finish in microseconds, so spin-yield first and only then back
    // off to short sleeps (bounded poll latency, and — unlike a cv wait — no
    // worker ever has to touch the group after its final decrement).
    if (++idle_spins < 1024) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

}  // namespace hdmm
