#include "common/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include "common/log.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace hdmm {

namespace {

enum class Mode { kOff, kAlways, kNth, kTimes, kAfter, kProb, kCrash };

struct Point {
  Mode mode = Mode::kOff;
  uint64_t n = 0;        // Threshold for nth/times/after/crash.
  double p = 0.0;        // Probability for prob.
  uint64_t hits = 0;     // Arrivals at the site since activation.
  uint64_t rng = 0x9e3779b97f4a7c15ull;  // Per-point deterministic stream.
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Point> points;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::vector<std::string>& CrashSiteList() {
  static std::vector<std::string>* sites = new std::vector<std::string>();
  return *sites;
}

std::mutex& CrashSiteMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// SplitMix64 step: deterministic per-point uniform stream for prob mode, so
// probabilistic injection reproduces across runs without global RNG state.
double NextUniform(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
}

bool ParseUint(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = v;
  return true;
}

bool ParseMode(const std::string& mode, Point* out, std::string* error) {
  const size_t colon = mode.find(':');
  const std::string head =
      colon == std::string::npos ? mode : mode.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : mode.substr(colon + 1);
  auto fail = [&](const char* why) {
    if (error != nullptr) *error = "bad failpoint mode '" + mode + "': " + why;
    return false;
  };
  if (head == "off") {
    out->mode = Mode::kOff;
    return arg.empty() ? true : fail("takes no argument");
  }
  if (head == "always") {
    out->mode = Mode::kAlways;
    return arg.empty() ? true : fail("takes no argument");
  }
  if (head == "nth" || head == "times" || head == "after") {
    out->mode = head == "nth" ? Mode::kNth
                              : (head == "times" ? Mode::kTimes : Mode::kAfter);
    if (!ParseUint(arg, &out->n)) return fail("wants :N");
    if (out->mode != Mode::kAfter && out->n == 0) return fail("N must be >= 1");
    return true;
  }
  if (head == "prob") {
    out->mode = Mode::kProb;
    char* end = nullptr;
    out->p = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end != arg.c_str() + arg.size() || out->p < 0.0 ||
        out->p > 1.0) {
      return fail("wants :P in [0, 1]");
    }
    return true;
  }
  if (head == "crash") {
    out->mode = Mode::kCrash;
    out->n = 1;
    if (!arg.empty() && (!ParseUint(arg, &out->n) || out->n == 0)) {
      return fail("wants :N >= 1");
    }
    return true;
  }
  return fail("unknown mode (want off|always|nth:N|times:N|after:N|prob:P|"
              "crash[:N])");
}

// Environment activation at process start: HDMM_FAILPOINTS is how the crash
// harness arms a forked/exec'd child, and how an operator reproduces a
// failure path in a deployed binary without a rebuild.
const bool g_env_activated = [] {
  const char* env = std::getenv("HDMM_FAILPOINTS");
  if (env != nullptr && *env != '\0') {
    std::string error;
    if (!Failpoints::ActivateSpec(env, &error)) {
      HDMM_LOG(Error, "HDMM_FAILPOINTS: %s", error.c_str());
      std::abort();  // A misspelled injection spec must not silently no-op.
    }
  }
  return true;
}();

}  // namespace

std::atomic<int> Failpoints::active_count_{0};

bool Failpoints::Hit(const char* name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return false;
  Point& point = it->second;
  const uint64_t hit = ++point.hits;
  switch (point.mode) {
    case Mode::kOff:
      return false;
    case Mode::kAlways:
      return true;
    case Mode::kNth:
      return hit == point.n;
    case Mode::kTimes:
      return hit <= point.n;
    case Mode::kAfter:
      return hit > point.n;
    case Mode::kProb:
      return NextUniform(&point.rng) < point.p;
    case Mode::kCrash:
      if (hit >= point.n) CrashNow();
      return false;
  }
  return false;
}

bool Failpoints::Activate(const std::string& name, const std::string& mode,
                          std::string* error) {
  Point point;
  if (!ParseMode(mode, &point, error)) return false;
  if (name.empty()) {
    if (error != nullptr) *error = "empty failpoint name";
    return false;
  }
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto [it, inserted] = registry.points.emplace(name, point);
  if (!inserted) {
    it->second = point;  // Re-activation resets the hit count.
  } else {
    active_count_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool Failpoints::ActivateSpec(const std::string& spec, std::string* error) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) {
        *error = "bad failpoint spec item '" + item + "' (want name=mode)";
      }
      return false;
    }
    if (!Activate(item.substr(0, eq), item.substr(eq + 1), error)) {
      return false;
    }
  }
  return true;
}

void Failpoints::Deactivate(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  if (registry.points.erase(name) > 0) {
    active_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Failpoints::DeactivateAll() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  active_count_.fetch_sub(static_cast<int>(registry.points.size()),
                          std::memory_order_relaxed);
  registry.points.clear();
}

uint64_t Failpoints::HitCount(const std::string& name) {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

void Failpoints::CrashNow() {
  // SIGKILL cannot be caught or ignored: no destructors, no atexit, no
  // stdio flushing — exactly the state a power loss leaves behind.
  ::kill(::getpid(), SIGKILL);
  std::abort();  // Unreachable; keeps [[noreturn]] honest for the compiler.
}

std::vector<std::string> Failpoints::CrashSites() {
  std::lock_guard<std::mutex> lock(CrashSiteMutex());
  return CrashSiteList();
}

CrashSiteRegistrar::CrashSiteRegistrar(const char* name) {
  std::lock_guard<std::mutex> lock(CrashSiteMutex());
  CrashSiteList().emplace_back(name);
}

}  // namespace hdmm
