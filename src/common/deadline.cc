#include "common/deadline.h"

namespace hdmm {

Status CancelToken::StopStatus() const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("cancelled by caller");
  }
  if (deadline_.Expired()) {
    return Status::DeadlineExceeded("deadline expired");
  }
  return Status::Ok();
}

}  // namespace hdmm
