#include "common/trace.h"

#include <unistd.h>

#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace hdmm {

namespace {

constexpr size_t kRingCapacity = 1u << 14;  // Spans kept per thread.

struct SpanEvent {
  const char* name;
  int64_t start_ns;
  int64_t end_ns;
};

// One per thread, heap-allocated on the thread's first span (or first
// SetThreadName) and registered in the global list below. Never freed:
// a worker can exit before the flush that wants its spans.
struct ThreadRing {
  int tid = 0;
  std::string name;
  uint64_t recorded = 0;  // Total spans ever recorded (ring may have fewer).
  SpanEvent events[kRingCapacity];
};

struct TraceState {
  std::mutex mu;
  std::string path;
  std::vector<ThreadRing*> rings;
  int next_tid = 1;
};

TraceState& GlobalState() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadRing& ThisThreadRing() {
  thread_local ThreadRing* ring = [] {
    ThreadRing* r = new ThreadRing();
    TraceState& state = GlobalState();
    std::lock_guard<std::mutex> lock(state.mu);
    r->tid = state.next_tid++;
    state.rings.push_back(r);
    return r;
  }();
  return *ring;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Writes the Chrome trace-event JSON. Caller holds the state lock, so the
// ring set is stable; in-flight Emit calls on other threads may tear a
// single event slot, which at worst misreports one span's bounds — the
// document itself stays well-formed because `recorded` is read once.
bool WriteTraceFileLocked(TraceState& state, std::string* error) {
  std::FILE* f = std::fopen(state.path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open trace file " + state.path;
    return false;
  }
  const long pid = static_cast<long>(::getpid());
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;
  for (const ThreadRing* ring : state.rings) {
    const std::string name =
        ring->name.empty() ? "thread-" + std::to_string(ring->tid)
                           : ring->name;
    std::fprintf(f,
                 "%s{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %ld, "
                 "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
                 first ? "" : ",\n", pid, ring->tid,
                 JsonEscape(name).c_str());
    first = false;
    const uint64_t dropped =
        ring->recorded > kRingCapacity ? ring->recorded - kRingCapacity : 0;
    if (dropped > 0) {
      std::fprintf(f,
                   ",\n{\"ph\": \"M\", \"name\": \"hdmm_dropped_spans\", "
                   "\"pid\": %ld, \"tid\": %d, \"args\": {\"count\": %llu}}",
                   pid, ring->tid, static_cast<unsigned long long>(dropped));
    }
    const uint64_t kept =
        ring->recorded < kRingCapacity ? ring->recorded : kRingCapacity;
    // Ring order: oldest first so Perfetto sees monotone timestamps per
    // thread when nothing was dropped.
    const uint64_t head = ring->recorded % kRingCapacity;
    for (uint64_t i = 0; i < kept; ++i) {
      const uint64_t idx =
          dropped > 0 ? (head + i) % kRingCapacity : i;
      const SpanEvent& e = ring->events[idx];
      if (e.name == nullptr) continue;
      std::fprintf(f,
                   ",\n{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"hdmm\", "
                   "\"pid\": %ld, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}",
                   JsonEscape(e.name).c_str(), pid, ring->tid,
                   static_cast<double>(e.start_ns) / 1e3,
                   static_cast<double>(e.end_ns - e.start_ns) / 1e3);
    }
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + state.path;
  return ok;
}

// HDMM_TRACE=<file>: arm at static init, flush at exit. This is the
// no-recompile operator path; tests and the CLI use Start/Stop directly.
const bool g_env_activated = [] {
  const char* env = std::getenv("HDMM_TRACE");
  if (env != nullptr && *env != '\0') {
    std::string error;
    if (Trace::Start(env, &error)) {
      std::atexit([] { Trace::Stop(); });
    } else {
      HDMM_LOG(Error, "HDMM_TRACE: %s", error.c_str());
    }
  }
  return true;
}();

}  // namespace

std::atomic<bool> Trace::enabled_{false};

int64_t Trace::NowNs() {
  static const std::chrono::steady_clock::time_point base =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - base)
      .count();
}

bool Trace::Start(const std::string& path, std::string* error) {
  TraceState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (enabled_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "trace already collecting to " + state.path;
    return false;
  }
  state.path = path;
  // Reset per-thread rings from prior sessions so a restarted trace does not
  // replay stale spans.
  for (ThreadRing* ring : state.rings) ring->recorded = 0;
  NowNs();  // Pin the timebase before the first span.
  enabled_.store(true, std::memory_order_release);
  return true;
}

bool Trace::Stop(std::string* error) {
  TraceState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!enabled_.load(std::memory_order_relaxed)) return true;
  enabled_.store(false, std::memory_order_release);
  return WriteTraceFileLocked(state, error);
}

bool Trace::Flush(std::string* error) {
  TraceState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.path.empty()) {
    if (error != nullptr) *error = "trace was never started";
    return false;
  }
  return WriteTraceFileLocked(state, error);
}

void Trace::SetThreadName(const std::string& name) {
  ThreadRing& ring = ThisThreadRing();
  TraceState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  ring.name = name;
}

uint64_t Trace::RecordedSpans() {
  TraceState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t total = 0;
  for (const ThreadRing* ring : state.rings) total += ring->recorded;
  return total;
}

void Trace::Emit(const char* name, int64_t start_ns, int64_t end_ns) {
  ThreadRing& ring = ThisThreadRing();
  SpanEvent& slot = ring.events[ring.recorded % kRingCapacity];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  ++ring.recorded;
}

}  // namespace hdmm
