#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace hdmm {
namespace {

// SplitMix64 finalizer (Steele, Lea & Flood): a full-avalanche mix used to
// derive well-separated child seeds from correlated inputs like
// (seed, epoch, stream) triples.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Rng Rng::Fork(uint64_t stream) {
  ++fork_epoch_;
  uint64_t h = SplitMix64(seed_);
  h = SplitMix64(h ^ fork_epoch_);
  h = SplitMix64(h ^ stream);
  return Rng(h);
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
}

double Rng::Gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::Laplace(double b) {
  // Inverse-CDF sampling: u uniform in (-1/2, 1/2),
  // x = -b * sign(u) * ln(1 - 2|u|).
  double u = Uniform() - 0.5;
  double sign = (u >= 0.0) ? 1.0 : -1.0;
  return -b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

std::vector<double> Rng::LaplaceVector(int64_t n, double b) {
  std::vector<double> out(static_cast<size_t>(n));
  for (auto& v : out) v = Laplace(b);
  return out;
}

std::vector<double> Rng::RademacherVector(int64_t n) {
  std::vector<double> out(static_cast<size_t>(n));
  for (auto& v : out) v = (Uniform() < 0.5) ? -1.0 : 1.0;
  return out;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<size_t>(i)] = i;
  std::shuffle(p.begin(), p.end(), gen_);
  return p;
}

}  // namespace hdmm
