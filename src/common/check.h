// Lightweight contract-checking macros. The library does not use exceptions
// (Google C++ style); contract violations abort with a diagnostic instead.
#ifndef HDMM_COMMON_CHECK_H_
#define HDMM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a diagnostic if `cond` is false. Used for
/// programmer-error contracts (shape mismatches, invalid arguments); it is not
/// a recoverable error channel.
#define HDMM_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HDMM_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// HDMM_CHECK with an extra human-readable message.
#define HDMM_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HDMM_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // HDMM_COMMON_CHECK_H_
