// LSMR iterative least-squares solver (Fong & Saunders, SISC 2011) on
// implicit operators. Used for the RECONSTRUCT step when the strategy is a
// union of Kronecker products, whose pseudo-inverse has no closed form
// (Section 7.2).
#ifndef HDMM_LINALG_LSMR_H_
#define HDMM_LINALG_LSMR_H_

#include "linalg/linear_operator.h"

namespace hdmm {

/// Options for the LSMR solver.
struct LsmrOptions {
  int max_iterations = 2000;
  double atol = 1e-10;  ///< Relative tolerance on ||A^T r||.
  double btol = 1e-10;  ///< Relative tolerance on ||r||.
};

/// Result of an LSMR solve.
struct LsmrResult {
  Vector x;              ///< Least-squares solution.
  int iterations = 0;    ///< Iterations performed.
  double residual_norm = 0.0;     ///< ||b - A x||.
  double normal_residual = 0.0;   ///< ||A^T (b - A x)||.
  bool converged = false;
};

/// Minimizes ||A x - b||_2 with the LSMR bidiagonalization method. Only
/// matrix-vector products with A and A^T are required.
LsmrResult LsmrSolve(const LinearOperator& a, const Vector& b,
                     const LsmrOptions& options = LsmrOptions());

}  // namespace hdmm

#endif  // HDMM_LINALG_LSMR_H_
