// Symmetric eigendecomposition. Used to build pseudo-inverses of Gram
// matrices (Section 4.4), of strategy matrices, and for the spectral lower
// bound (Section 8).
//
// The solver is the classic dense pipeline: Householder reduction to
// tridiagonal form, implicit-shift QL on the tridiagonal, and a blocked
// (compact-WY) back-transformation of the eigenvectors through the GEMM
// substrate. Cyclic Jacobi survives only as the tiny-n fallback, where its
// simplicity beats the pipeline's fixed costs.
#ifndef HDMM_LINALG_EIGEN_SYM_H_
#define HDMM_LINALG_EIGEN_SYM_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Result of a symmetric eigendecomposition X = V diag(lambda) V^T.
struct SymmetricEigen {
  Vector eigenvalues;   ///< Ascending order.
  Matrix eigenvectors;  ///< Column i is the eigenvector for eigenvalues[i].
};

/// Full eigendecomposition of a symmetric matrix. Householder
/// tridiagonalization + implicit-shift QL + blocked reflector
/// back-transformation; matrices smaller than the Jacobi cutoff use cyclic
/// Jacobi instead (max_sweeps / tol apply only to that fallback path).
SymmetricEigen EigenSym(const Matrix& x, int max_sweeps = 64,
                        double tol = 1e-12);

/// Eigenvalues only (ascending). Skips eigenvector accumulation and the
/// back-transformation entirely — about 4x cheaper than EigenSym and the
/// right call for spectra-only consumers (nuclear norms, spectral bounds).
Vector EigenvaluesSym(const Matrix& x);

}  // namespace hdmm

#endif  // HDMM_LINALG_EIGEN_SYM_H_
