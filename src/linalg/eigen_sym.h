// Symmetric eigendecomposition via the cyclic Jacobi method. Used to build
// pseudo-inverses of Gram matrices (Section 4.4) and of strategy matrices.
#ifndef HDMM_LINALG_EIGEN_SYM_H_
#define HDMM_LINALG_EIGEN_SYM_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Result of a symmetric eigendecomposition X = V diag(lambda) V^T.
struct SymmetricEigen {
  Vector eigenvalues;   ///< Ascending order.
  Matrix eigenvectors;  ///< Column i is the eigenvector for eigenvalues[i].
};

/// Full eigendecomposition of a symmetric matrix using cyclic Jacobi
/// rotations. O(n^3) per sweep; converges in a handful of sweeps for the
/// well-conditioned matrices this library produces.
SymmetricEigen EigenSym(const Matrix& x, int max_sweeps = 64,
                        double tol = 1e-12);

}  // namespace hdmm

#endif  // HDMM_LINALG_EIGEN_SYM_H_
