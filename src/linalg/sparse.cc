#include "linalg/sparse.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.h"

namespace hdmm {

SparseMatrix SparseMatrix::FromTriplets(
    int64_t rows, int64_t cols,
    std::vector<std::tuple<int64_t, int64_t, double>> triplets) {
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(triplets.begin(), triplets.end());
  m.row_ptr_.assign(static_cast<size_t>(rows + 1), 0);
  for (size_t t = 0; t < triplets.size();) {
    auto [i, j, v] = triplets[t];
    HDMM_CHECK(i >= 0 && i < rows && j >= 0 && j < cols);
    // Sum duplicates.
    double sum = v;
    size_t u = t + 1;
    while (u < triplets.size() && std::get<0>(triplets[u]) == i &&
           std::get<1>(triplets[u]) == j) {
      sum += std::get<2>(triplets[u]);
      ++u;
    }
    if (sum != 0.0) {
      m.col_idx_.push_back(j);
      m.values_.push_back(sum);
      ++m.row_ptr_[static_cast<size_t>(i + 1)];
    }
    t = u;
  }
  for (int64_t i = 0; i < rows; ++i)
    m.row_ptr_[static_cast<size_t>(i + 1)] += m.row_ptr_[static_cast<size_t>(i)];
  return m;
}

SparseMatrix SparseMatrix::FromDense(const Matrix& dense, double tolerance) {
  std::vector<std::tuple<int64_t, int64_t, double>> triplets;
  for (int64_t i = 0; i < dense.rows(); ++i) {
    for (int64_t j = 0; j < dense.cols(); ++j) {
      if (std::fabs(dense(i, j)) > tolerance)
        triplets.push_back({i, j, dense(i, j)});
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(triplets));
}

Vector SparseMatrix::Apply(const Vector& x) const {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == cols_);
  Vector y(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int64_t k = row_ptr_[static_cast<size_t>(i)];
         k < row_ptr_[static_cast<size_t>(i + 1)]; ++k) {
      s += values_[static_cast<size_t>(k)] *
           x[static_cast<size_t>(col_idx_[static_cast<size_t>(k)])];
    }
    y[static_cast<size_t>(i)] = s;
  }
  return y;
}

Vector SparseMatrix::ApplyTranspose(const Vector& x) const {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == rows_);
  Vector y(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    for (int64_t k = row_ptr_[static_cast<size_t>(i)];
         k < row_ptr_[static_cast<size_t>(i + 1)]; ++k) {
      y[static_cast<size_t>(col_idx_[static_cast<size_t>(k)])] +=
          xi * values_[static_cast<size_t>(k)];
    }
  }
  return y;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = row_ptr_[static_cast<size_t>(i)];
         k < row_ptr_[static_cast<size_t>(i + 1)]; ++k) {
      out(i, col_idx_[static_cast<size_t>(k)]) = values_[static_cast<size_t>(k)];
    }
  }
  return out;
}

double SparseMatrix::MaxAbsColSum() const {
  Vector sums(static_cast<size_t>(cols_), 0.0);
  for (size_t k = 0; k < values_.size(); ++k) {
    sums[static_cast<size_t>(col_idx_[k])] += std::fabs(values_[k]);
  }
  double m = 0.0;
  for (double v : sums) m = std::max(m, v);
  return m;
}

}  // namespace hdmm
