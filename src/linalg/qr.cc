#include "linalg/qr.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hdmm {

namespace {

// Compact Householder factorization. On return `a` holds R in its upper
// triangle and the essential parts of the Householder vectors below the
// diagonal (v_j has v_j[j] = 1 implicit); `betas` holds the reflector
// coefficients. Standard Golub & Van Loan algorithm 5.2.1.
void HouseholderFactor(Matrix* a, Vector* betas) {
  const int64_t m = a->rows();
  const int64_t n = a->cols();
  betas->assign(static_cast<size_t>(n), 0.0);

  for (int64_t j = 0; j < n; ++j) {
    // Norm of the trailing part of column j.
    double sigma = 0.0;
    for (int64_t i = j; i < m; ++i) sigma += (*a)(i, j) * (*a)(i, j);
    const double norm = std::sqrt(sigma);
    if (norm == 0.0) continue;  // Zero column: nothing to reflect.

    const double ajj = (*a)(j, j);
    // Choose the sign that avoids cancellation.
    const double alpha = ajj >= 0.0 ? -norm : norm;
    const double v0 = ajj - alpha;
    // beta = 2 / ||v||^2 with v = (v0, a_{j+1,j}, ..., a_{m-1,j}).
    const double vnorm2 = sigma - ajj * ajj + v0 * v0;
    if (vnorm2 == 0.0) continue;  // Column already in triangular form.
    const double beta = 2.0 / vnorm2;
    (*betas)[static_cast<size_t>(j)] = beta;

    // Store the essential vector scaled so its leading entry is 1.
    (*a)(j, j) = alpha;
    for (int64_t i = j + 1; i < m; ++i) (*a)(i, j) /= v0;
    // Absorb v0 into beta so the stored vector (1, a_{j+1,j}, ...) works.
    (*betas)[static_cast<size_t>(j)] *= v0 * v0;

    // Apply the reflector to the trailing columns.
    for (int64_t k = j + 1; k < n; ++k) {
      double dot = (*a)(j, k);
      for (int64_t i = j + 1; i < m; ++i) dot += (*a)(i, j) * (*a)(i, k);
      const double scale = (*betas)[static_cast<size_t>(j)] * dot;
      (*a)(j, k) -= scale;
      for (int64_t i = j + 1; i < m; ++i) (*a)(i, k) -= scale * (*a)(i, j);
    }
  }
}

// Applies Q^T (the accumulated reflectors) to a vector in place.
void ApplyQTranspose(const Matrix& factored, const Vector& betas, Vector* b) {
  const int64_t m = factored.rows();
  const int64_t n = factored.cols();
  for (int64_t j = 0; j < n; ++j) {
    const double beta = betas[static_cast<size_t>(j)];
    if (beta == 0.0) continue;
    double dot = (*b)[static_cast<size_t>(j)];
    for (int64_t i = j + 1; i < m; ++i) {
      dot += factored(i, j) * (*b)[static_cast<size_t>(i)];
    }
    const double scale = beta * dot;
    (*b)[static_cast<size_t>(j)] -= scale;
    for (int64_t i = j + 1; i < m; ++i) {
      (*b)[static_cast<size_t>(i)] -= scale * factored(i, j);
    }
  }
}

}  // namespace

Matrix QrResult::Reconstruct() const { return MatMul(q, r); }

QrResult HouseholderQr(const Matrix& a) {
  HDMM_CHECK_MSG(a.rows() >= a.cols(),
                 "HouseholderQr requires rows >= cols (thin factorization)");
  HDMM_CHECK(a.cols() > 0);
  const int64_t m = a.rows();
  const int64_t n = a.cols();

  Matrix factored = a;
  Vector betas;
  HouseholderFactor(&factored, &betas);

  // Extract R (upper triangle), flipping signs so the diagonal is >= 0.
  Matrix r(n, n);
  std::vector<bool> flip(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < n; ++i) {
    flip[static_cast<size_t>(i)] = factored(i, i) < 0.0;
    for (int64_t j = i; j < n; ++j) {
      r(i, j) = flip[static_cast<size_t>(i)] ? -factored(i, j) : factored(i, j);
    }
  }

  // Build thin Q by applying the reflectors to the first n identity columns:
  // Q e_k for k < n. Reflectors are applied in reverse order.
  Matrix q(m, n);
  for (int64_t k = 0; k < n; ++k) {
    Vector col(static_cast<size_t>(m), 0.0);
    col[static_cast<size_t>(k)] = 1.0;
    for (int64_t j = n - 1; j >= 0; --j) {
      const double beta = betas[static_cast<size_t>(j)];
      if (beta == 0.0) continue;
      double dot = col[static_cast<size_t>(j)];
      for (int64_t i = j + 1; i < m; ++i) {
        dot += factored(i, j) * col[static_cast<size_t>(i)];
      }
      const double scale = beta * dot;
      col[static_cast<size_t>(j)] -= scale;
      for (int64_t i = j + 1; i < m; ++i) {
        col[static_cast<size_t>(i)] -= scale * factored(i, j);
      }
    }
    const double sign = flip[static_cast<size_t>(k)] ? -1.0 : 1.0;
    for (int64_t i = 0; i < m; ++i) q(i, k) = sign * col[static_cast<size_t>(i)];
  }
  return QrResult{std::move(q), std::move(r)};
}

Vector QrLeastSquares(const Matrix& a, const Vector& b, double rcond) {
  HDMM_CHECK_MSG(a.rows() >= a.cols(),
                 "QrLeastSquares requires rows >= cols");
  HDMM_CHECK(static_cast<int64_t>(b.size()) == a.rows());
  const int64_t n = a.cols();

  Matrix factored = a;
  Vector betas;
  HouseholderFactor(&factored, &betas);

  // Rank check on the R diagonal.
  double max_diag = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    max_diag = std::max(max_diag, std::abs(factored(j, j)));
  }
  for (int64_t j = 0; j < n; ++j) {
    HDMM_CHECK_MSG(std::abs(factored(j, j)) > rcond * max_diag,
                   "QrLeastSquares: numerically rank-deficient input");
  }

  Vector qtb = b;
  ApplyQTranspose(factored, betas, &qtb);

  // Back substitution on R x = (Q^T b)[0..n).
  Vector x(static_cast<size_t>(n), 0.0);
  for (int64_t i = n - 1; i >= 0; --i) {
    double acc = qtb[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) {
      acc -= factored(i, j) * x[static_cast<size_t>(j)];
    }
    x[static_cast<size_t>(i)] = acc / factored(i, i);
  }
  return x;
}

double AbsDeterminant(const Matrix& a) {
  HDMM_CHECK_MSG(a.rows() == a.cols(), "AbsDeterminant requires square input");
  Matrix factored = a;
  Vector betas;
  HouseholderFactor(&factored, &betas);
  double det = 1.0;
  for (int64_t j = 0; j < a.cols(); ++j) det *= std::abs(factored(j, j));
  return det;
}

}  // namespace hdmm
