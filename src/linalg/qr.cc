#include "linalg/qr.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "linalg/gemm.h"

namespace hdmm {

namespace {

// Panel width for the blocked factorization, and the order below which the
// scalar path wins (the WY scratch and GEMM dispatch overheads dominate for
// tiny trailing matrices).
constexpr int64_t kPanelWidth = 32;
constexpr int64_t kBlockedCutoff = 64;

// Generates the Householder reflector for column j over rows [j, m) and
// applies it to columns (j, col_end). Storage convention (shared with the
// least-squares / determinant paths): R's entry on the diagonal, the
// essential vector scaled to a unit leading entry below it, and
// tau_j = 2 v0^2 / ||v||^2 in betas so H_j = I - tau_j v v^T with
// v = (1, a_{j+1,j}, ...). Standard Golub & Van Loan algorithm 5.2.1.
void ReflectColumn(Matrix* a, Vector* betas, int64_t j, int64_t col_end) {
  const int64_t m = a->rows();
  double sigma = 0.0;
  for (int64_t i = j; i < m; ++i) sigma += (*a)(i, j) * (*a)(i, j);
  const double norm = std::sqrt(sigma);
  if (norm == 0.0) return;  // Zero column: nothing to reflect.

  const double ajj = (*a)(j, j);
  // Choose the sign that avoids cancellation.
  const double alpha = ajj >= 0.0 ? -norm : norm;
  const double v0 = ajj - alpha;
  // beta = 2 / ||v||^2 with v = (v0, a_{j+1,j}, ..., a_{m-1,j}).
  const double vnorm2 = sigma - ajj * ajj + v0 * v0;
  if (vnorm2 == 0.0) return;  // Column already in triangular form.
  const double tau = 2.0 * v0 * v0 / vnorm2;
  (*betas)[static_cast<size_t>(j)] = tau;

  // Store the essential vector scaled so its leading entry is 1.
  (*a)(j, j) = alpha;
  for (int64_t i = j + 1; i < m; ++i) (*a)(i, j) /= v0;

  // Apply the reflector to columns (j, col_end).
  for (int64_t k = j + 1; k < col_end; ++k) {
    double dot = (*a)(j, k);
    for (int64_t i = j + 1; i < m; ++i) dot += (*a)(i, j) * (*a)(i, k);
    const double scale = tau * dot;
    (*a)(j, k) -= scale;
    for (int64_t i = j + 1; i < m; ++i) (*a)(i, k) -= scale * (*a)(i, j);
  }
}

// Compact scalar Householder factorization: R in the upper triangle,
// essential reflector vectors below the diagonal, taus in `betas`.
void HouseholderFactorScalar(Matrix* a, Vector* betas) {
  const int64_t n = a->cols();
  for (int64_t j = 0; j < n; ++j) ReflectColumn(a, betas, j, n);
}

// Materializes the unit-lower-trapezoidal reflector panel V (h x nb) for
// panel columns [j0, j0 + nb), h = m - j0: column jl holds reflector
// j0 + jl with its implicit unit on local row jl.
Matrix BuildPanelV(const Matrix& a, int64_t j0, int64_t nb) {
  const int64_t m = a.rows();
  const int64_t h = m - j0;
  Matrix v(h, nb);
  for (int64_t jl = 0; jl < nb; ++jl) {
    v(jl, jl) = 1.0;
    for (int64_t r = jl + 1; r < h; ++r) v(r, jl) = a(j0 + r, j0 + jl);
  }
  return v;
}

// dlarft-style forward columnwise build of the nb x nb upper-triangular T
// with H_{j0} H_{j0+1} ... H_{j0+nb-1} = I - V T V^T:
// T(jl,jl) = tau_jl, T(0:jl, jl) = -tau_jl T(0:jl, 0:jl) (V^T v_jl).
Matrix BuildPanelT(const Matrix& v, const Vector& betas, int64_t j0,
                   int64_t nb) {
  const int64_t h = v.rows();
  Matrix t(nb, nb);
  Vector vv(static_cast<size_t>(nb), 0.0);
  for (int64_t jl = 0; jl < nb; ++jl) {
    const double tau = betas[static_cast<size_t>(j0 + jl)];
    if (tau == 0.0) continue;  // H = I: zero column keeps the product exact.
    for (int64_t c = 0; c < jl; ++c) vv[static_cast<size_t>(c)] = 0.0;
    for (int64_t r = jl; r < h; ++r) {
      const double* vrow = v.Row(r);
      const double vr = vrow[jl];
      for (int64_t c = 0; c < jl; ++c) vv[static_cast<size_t>(c)] += vrow[c] * vr;
    }
    for (int64_t rr = 0; rr < jl; ++rr) {
      double s = 0.0;
      for (int64_t cc = rr; cc < jl; ++cc) {
        s += t(rr, cc) * vv[static_cast<size_t>(cc)];
      }
      t(rr, jl) = -tau * s;
    }
    t(jl, jl) = tau;
  }
  return t;
}

// work := T^T work in place (T upper triangular, so T^T is lower). Row i of
// the product reads only original rows <= i; descending order leaves those
// rows untouched until they are themselves computed.
void ApplyTTranspose(const Matrix& t, Matrix* work) {
  const int64_t nb = t.rows();
  const int64_t nc = work->cols();
  for (int64_t i = nb - 1; i >= 0; --i) {
    double* wrow = work->Row(i);
    const double tii = t(i, i);
    for (int64_t j = 0; j < nc; ++j) wrow[j] *= tii;
    for (int64_t r = 0; r < i; ++r) {
      const double coef = t(r, i);
      if (coef == 0.0) continue;
      const double* xrow = work->Row(r);
      for (int64_t j = 0; j < nc; ++j) wrow[j] += coef * xrow[j];
    }
  }
}

// work := T work in place (ascending rows only read not-yet-overwritten
// rows at or below the current one).
void ApplyT(const Matrix& t, Matrix* work) {
  const int64_t nb = t.rows();
  const int64_t nc = work->cols();
  for (int64_t i = 0; i < nb; ++i) {
    double* wrow = work->Row(i);
    const double tii = t(i, i);
    for (int64_t j = 0; j < nc; ++j) wrow[j] *= tii;
    for (int64_t r = i + 1; r < nb; ++r) {
      const double coef = t(i, r);
      if (coef == 0.0) continue;
      const double* xrow = work->Row(r);
      for (int64_t j = 0; j < nc; ++j) wrow[j] += coef * xrow[j];
    }
  }
}

// Blocked right-looking Householder factorization on the GEMM substrate:
// each kPanelWidth-column panel is factored with the scalar kernel confined
// to the panel, aggregated into compact-WY form Q_panel = I - V T V^T, and
// the trailing columns are updated with two GEMMs
//   C := Q_panel^T C = C - V (T^T (V^T C))
// so the O(m n^2) bulk of the factorization runs at GEMM speed instead of
// one rank-1 update per reflector.
void HouseholderFactorBlocked(Matrix* a, Vector* betas) {
  const int64_t m = a->rows();
  const int64_t n = a->cols();
  for (int64_t j0 = 0; j0 < n; j0 += kPanelWidth) {
    const int64_t nb = std::min<int64_t>(kPanelWidth, n - j0);
    for (int64_t j = j0; j < j0 + nb; ++j) ReflectColumn(a, betas, j, j0 + nb);

    const int64_t ntrail = n - (j0 + nb);
    if (ntrail <= 0) continue;
    const int64_t h = m - j0;
    const Matrix v = BuildPanelV(*a, j0, nb);
    const Matrix t = BuildPanelT(v, *betas, j0, nb);

    // W = V^T C over the h x ntrail trailing view C = a[j0.., j0+nb..].
    double* c = a->Row(j0) + (j0 + nb);
    Matrix work(nb, ntrail);
    GemmViewUpdate(nb, ntrail, h, 1.0, v.data(), nb, /*a_trans=*/true, c, n,
                   /*b_trans=*/false, work.data(), ntrail,
                   /*lower_only=*/false);
    ApplyTTranspose(t, &work);
    GemmViewUpdate(h, ntrail, nb, -1.0, v.data(), nb, /*a_trans=*/false,
                   work.data(), ntrail, /*b_trans=*/false, c, n,
                   /*lower_only=*/false);
  }
}

// Compact Householder factorization: scalar for small problems, blocked
// panels + compact-WY trailing updates beyond kBlockedCutoff columns.
void HouseholderFactor(Matrix* a, Vector* betas) {
  betas->assign(static_cast<size_t>(a->cols()), 0.0);
  if (a->cols() < kBlockedCutoff) {
    HouseholderFactorScalar(a, betas);
  } else {
    HouseholderFactorBlocked(a, betas);
  }
}

// Applies Q^T (the accumulated reflectors) to a vector in place.
void ApplyQTranspose(const Matrix& factored, const Vector& betas, Vector* b) {
  const int64_t m = factored.rows();
  const int64_t n = factored.cols();
  for (int64_t j = 0; j < n; ++j) {
    const double beta = betas[static_cast<size_t>(j)];
    if (beta == 0.0) continue;
    double dot = (*b)[static_cast<size_t>(j)];
    for (int64_t i = j + 1; i < m; ++i) {
      dot += factored(i, j) * (*b)[static_cast<size_t>(i)];
    }
    const double scale = beta * dot;
    (*b)[static_cast<size_t>(j)] -= scale;
    for (int64_t i = j + 1; i < m; ++i) {
      (*b)[static_cast<size_t>(i)] -= scale * factored(i, j);
    }
  }
}

// Thin Q from the compact factorization: start from the first n identity
// columns and apply the reflector blocks last-to-first through the WY form,
//   E := Q_panel E = E - V (T (V^T E)),
// one panel pass over E per block instead of one pass per reflector. As in
// LAPACK's dorgqr, each block only touches columns >= j0: with last-to-first
// application a column k < j0 still has all-zero rows below j0 when panel j0
// is applied, so its update is provably a no-op — skipping those columns
// halves the back-transform flops.
Matrix BuildThinQ(const Matrix& factored, const Vector& betas) {
  const int64_t m = factored.rows();
  const int64_t n = factored.cols();
  Matrix q(m, n);
  for (int64_t k = 0; k < n; ++k) q(k, k) = 1.0;

  const int64_t last_panel = ((n - 1) / kPanelWidth) * kPanelWidth;
  for (int64_t j0 = last_panel; j0 >= 0; j0 -= kPanelWidth) {
    const int64_t nb = std::min<int64_t>(kPanelWidth, n - j0);
    const int64_t h = m - j0;
    const int64_t ncols = n - j0;
    const Matrix v = BuildPanelV(factored, j0, nb);
    const Matrix t = BuildPanelT(v, betas, j0, nb);

    double* c = q.Row(j0) + j0;
    Matrix work(nb, ncols);
    GemmViewUpdate(nb, ncols, h, 1.0, v.data(), nb, /*a_trans=*/true, c, n,
                   /*b_trans=*/false, work.data(), ncols,
                   /*lower_only=*/false);
    ApplyT(t, &work);
    GemmViewUpdate(h, ncols, nb, -1.0, v.data(), nb, /*a_trans=*/false,
                   work.data(), ncols, /*b_trans=*/false, c, n,
                   /*lower_only=*/false);
  }
  return q;
}

}  // namespace

Matrix QrResult::Reconstruct() const { return MatMul(q, r); }

QrResult HouseholderQr(const Matrix& a) {
  HDMM_CHECK_MSG(a.rows() >= a.cols(),
                 "HouseholderQr requires rows >= cols (thin factorization)");
  HDMM_CHECK(a.cols() > 0);
  const int64_t n = a.cols();

  Matrix factored = a;
  Vector betas;
  HouseholderFactor(&factored, &betas);

  // Extract R (upper triangle), flipping signs so the diagonal is >= 0.
  Matrix r(n, n);
  std::vector<bool> flip(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < n; ++i) {
    flip[static_cast<size_t>(i)] = factored(i, i) < 0.0;
    for (int64_t j = i; j < n; ++j) {
      r(i, j) = flip[static_cast<size_t>(i)] ? -factored(i, j) : factored(i, j);
    }
  }

  Matrix q = BuildThinQ(factored, betas);
  for (int64_t k = 0; k < n; ++k) {
    if (!flip[static_cast<size_t>(k)]) continue;
    for (int64_t i = 0; i < a.rows(); ++i) q(i, k) = -q(i, k);
  }
  return QrResult{std::move(q), std::move(r)};
}

Vector QrLeastSquares(const Matrix& a, const Vector& b, double rcond) {
  HDMM_CHECK_MSG(a.rows() >= a.cols(),
                 "QrLeastSquares requires rows >= cols");
  HDMM_CHECK(static_cast<int64_t>(b.size()) == a.rows());
  const int64_t n = a.cols();

  Matrix factored = a;
  Vector betas;
  HouseholderFactor(&factored, &betas);

  // Rank check on the R diagonal.
  double max_diag = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    max_diag = std::max(max_diag, std::abs(factored(j, j)));
  }
  for (int64_t j = 0; j < n; ++j) {
    HDMM_CHECK_MSG(std::abs(factored(j, j)) > rcond * max_diag,
                   "QrLeastSquares: numerically rank-deficient input");
  }

  Vector qtb = b;
  ApplyQTranspose(factored, betas, &qtb);

  // Back substitution on R x = (Q^T b)[0..n).
  Vector x(static_cast<size_t>(n), 0.0);
  for (int64_t i = n - 1; i >= 0; --i) {
    double acc = qtb[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) {
      acc -= factored(i, j) * x[static_cast<size_t>(j)];
    }
    x[static_cast<size_t>(i)] = acc / factored(i, i);
  }
  return x;
}

double AbsDeterminant(const Matrix& a) {
  HDMM_CHECK_MSG(a.rows() == a.cols(), "AbsDeterminant requires square input");
  Matrix factored = a;
  Vector betas;
  HouseholderFactor(&factored, &betas);
  double det = 1.0;
  for (int64_t j = 0; j < a.cols(); ++j) det *= std::abs(factored(j, j));
  return det;
}

namespace {

// Businger-Golub pivoted factorization in compact form: R in the upper
// trapezoid of `a`, essential reflector vectors below the diagonal of the
// first min(m, n) columns, taus in `betas`, column permutation in `perm`.
// Pivot selection maximizes the remaining column norm; norms are downdated
// per step (O(n) instead of O(mn)) and recomputed from scratch when
// cancellation has eaten the downdated value (the dgeqp3 guard — without it
// a near-rank boundary can pivot on pure roundoff).
void PivotedFactor(Matrix* a, Vector* betas, std::vector<int64_t>* perm,
                   int64_t* rank, double rcond) {
  const int64_t m = a->rows();
  const int64_t n = a->cols();
  const int64_t kmax = std::min(m, n);
  betas->assign(static_cast<size_t>(n), 0.0);
  perm->resize(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) (*perm)[static_cast<size_t>(j)] = j;

  Vector norms(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < m; ++i) s += (*a)(i, j) * (*a)(i, j);
    norms[static_cast<size_t>(j)] = std::sqrt(s);
  }
  Vector norms_ref = norms;
  // Downdate accuracy floor (sqrt of double machine epsilon).
  constexpr double kRecomputeTol = 1.49e-8;

  *rank = 0;
  double r00 = 0.0;
  for (int64_t j = 0; j < kmax; ++j) {
    int64_t pivot = j;
    for (int64_t k = j + 1; k < n; ++k) {
      if (norms[static_cast<size_t>(k)] > norms[static_cast<size_t>(pivot)]) {
        pivot = k;
      }
    }
    if (pivot != j) {
      for (int64_t i = 0; i < m; ++i) std::swap((*a)(i, j), (*a)(i, pivot));
      std::swap((*perm)[static_cast<size_t>(j)],
                (*perm)[static_cast<size_t>(pivot)]);
      std::swap(norms[static_cast<size_t>(j)],
                norms[static_cast<size_t>(pivot)]);
      std::swap(norms_ref[static_cast<size_t>(j)],
                norms_ref[static_cast<size_t>(pivot)]);
    }

    ReflectColumn(a, betas, j, n);

    const double diag = std::abs((*a)(j, j));
    if (j == 0) r00 = diag;
    if (diag > rcond * r00) *rank = j + 1;

    for (int64_t k = j + 1; k < n; ++k) {
      double& nk = norms[static_cast<size_t>(k)];
      if (nk == 0.0) continue;
      const double ratio = std::abs((*a)(j, k)) / nk;
      const double temp = std::max(0.0, 1.0 - ratio * ratio);
      const double rel = nk / norms_ref[static_cast<size_t>(k)];
      if (temp * rel * rel <= kRecomputeTol) {
        double s = 0.0;
        for (int64_t i = j + 1; i < m; ++i) s += (*a)(i, k) * (*a)(i, k);
        nk = std::sqrt(s);
        norms_ref[static_cast<size_t>(k)] = nk;
      } else {
        nk *= std::sqrt(temp);
      }
    }
  }
}

}  // namespace

Matrix PivotedQrResult::Reconstruct() const {
  const Matrix qr = MatMul(q, r);
  Matrix out(qr.rows(), qr.cols());
  for (int64_t j = 0; j < qr.cols(); ++j) {
    const int64_t dst = perm[static_cast<size_t>(j)];
    for (int64_t i = 0; i < qr.rows(); ++i) out(i, dst) = qr(i, j);
  }
  return out;
}

PivotedQrResult ColumnPivotedQr(const Matrix& a, double rcond) {
  HDMM_CHECK(a.rows() > 0 && a.cols() > 0);
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t kmax = std::min(m, n);

  Matrix factored = a;
  Vector betas;
  PivotedQrResult result;
  PivotedFactor(&factored, &betas, &result.perm, &result.rank, rcond);

  // R (upper trapezoid), flipping signs so the diagonal is >= 0.
  Matrix r(kmax, n);
  std::vector<bool> flip(static_cast<size_t>(kmax), false);
  for (int64_t i = 0; i < kmax; ++i) {
    flip[static_cast<size_t>(i)] = factored(i, i) < 0.0;
    for (int64_t j = i; j < n; ++j) {
      r(i, j) = flip[static_cast<size_t>(i)] ? -factored(i, j) : factored(i, j);
    }
  }

  // BuildThinQ reads one reflector per column, so hand it just the kmax
  // reflector columns (all of them when m >= n; the wide case has no
  // reflectors past row m).
  Matrix reflectors(m, kmax);
  for (int64_t j = 0; j < kmax; ++j) {
    for (int64_t i = 0; i < m; ++i) reflectors(i, j) = factored(i, j);
  }
  Vector reflector_betas(betas.begin(), betas.begin() + kmax);
  Matrix q = BuildThinQ(reflectors, reflector_betas);
  for (int64_t k = 0; k < kmax; ++k) {
    if (!flip[static_cast<size_t>(k)]) continue;
    for (int64_t i = 0; i < m; ++i) q(i, k) = -q(i, k);
  }
  result.q = std::move(q);
  result.r = std::move(r);
  return result;
}

Matrix PivotedQrLeastSquares(const Matrix& a, const Matrix& b, double rcond) {
  HDMM_CHECK_MSG(a.rows() >= a.cols(),
                 "PivotedQrLeastSquares requires rows >= cols");
  HDMM_CHECK(b.rows() == a.rows());
  const int64_t m = a.rows();
  const int64_t n = a.cols();
  const int64_t nrhs = b.cols();

  Matrix factored = a;
  Vector betas;
  std::vector<int64_t> perm;
  int64_t rank = 0;
  PivotedFactor(&factored, &betas, &perm, &rank, rcond);

  Matrix x(n, nrhs);
  Vector c(static_cast<size_t>(m), 0.0);
  Vector z(static_cast<size_t>(n), 0.0);
  for (int64_t col = 0; col < nrhs; ++col) {
    for (int64_t i = 0; i < m; ++i) c[static_cast<size_t>(i)] = b(i, col);
    ApplyQTranspose(factored, betas, &c);
    // Back substitution on the leading rank x rank block; directions beyond
    // the numerical rank carry no signal, only noise divided by a tiny
    // pivot — truncate them to zero instead.
    std::fill(z.begin(), z.end(), 0.0);
    for (int64_t i = rank - 1; i >= 0; --i) {
      double acc = c[static_cast<size_t>(i)];
      for (int64_t j = i + 1; j < rank; ++j) {
        acc -= factored(i, j) * z[static_cast<size_t>(j)];
      }
      z[static_cast<size_t>(i)] = acc / factored(i, i);
    }
    for (int64_t j = 0; j < n; ++j) {
      x(perm[static_cast<size_t>(j)], col) = z[static_cast<size_t>(j)];
    }
  }
  return x;
}

Vector PivotedQrLeastSquares(const Matrix& a, const Vector& b, double rcond) {
  HDMM_CHECK(static_cast<int64_t>(b.size()) == a.rows());
  Matrix rhs(a.rows(), 1);
  for (int64_t i = 0; i < a.rows(); ++i) rhs(i, 0) = b[static_cast<size_t>(i)];
  const Matrix x = PivotedQrLeastSquares(a, rhs, rcond);
  Vector out(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.cols(); ++i) out[static_cast<size_t>(i)] = x(i, 0);
  return out;
}

}  // namespace hdmm
