// Householder QR factorization: orthonormal range bases and full-rank least
// squares without forming normal equations (which square the condition
// number). Complements the Gram/Cholesky and SVD paths used elsewhere in the
// linear-algebra substrate.
#ifndef HDMM_LINALG_QR_H_
#define HDMM_LINALG_QR_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Thin QR factorization A = Q R of an m x n matrix with m >= n:
/// `q` is m x n with orthonormal columns and `r` is n x n upper triangular
/// with non-negative diagonal.
struct QrResult {
  Matrix q;
  Matrix r;

  /// Q R, for testing the factorization.
  Matrix Reconstruct() const;
};

/// Computes the thin QR factorization via Householder reflections.
/// Requires rows >= cols. O(m n^2), backward stable.
QrResult HouseholderQr(const Matrix& a);

/// Solves the least squares problem min_x ||A x - b||_2 through the QR
/// factorization. Requires rows >= cols and numerically full column rank
/// (every |r_jj| > rcond * max_j |r_jj|; dies otherwise — rank-deficient
/// problems should go through PinvViaSvd or LSMR instead).
Vector QrLeastSquares(const Matrix& a, const Vector& b, double rcond = 1e-12);

/// Determinant of a square matrix through its QR factorization, up to sign:
/// returns prod_j r_jj = |det(A)|.
double AbsDeterminant(const Matrix& a);

}  // namespace hdmm

#endif  // HDMM_LINALG_QR_H_
