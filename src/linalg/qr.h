// Householder QR factorization: orthonormal range bases and full-rank least
// squares without forming normal equations (which square the condition
// number). Complements the Gram/Cholesky and SVD paths used elsewhere in the
// linear-algebra substrate.
#ifndef HDMM_LINALG_QR_H_
#define HDMM_LINALG_QR_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace hdmm {

/// Thin QR factorization A = Q R of an m x n matrix with m >= n:
/// `q` is m x n with orthonormal columns and `r` is n x n upper triangular
/// with non-negative diagonal.
struct QrResult {
  Matrix q;
  Matrix r;

  /// Q R, for testing the factorization.
  Matrix Reconstruct() const;
};

/// Computes the thin QR factorization via Householder reflections.
/// Requires rows >= cols. O(m n^2), backward stable.
QrResult HouseholderQr(const Matrix& a);

/// Solves the least squares problem min_x ||A x - b||_2 through the QR
/// factorization. Requires rows >= cols and numerically full column rank
/// (every |r_jj| > rcond * max_j |r_jj|; dies otherwise — rank-deficient
/// problems should go through PinvViaSvd or LSMR instead).
Vector QrLeastSquares(const Matrix& a, const Vector& b, double rcond = 1e-12);

/// Determinant of a square matrix through its QR factorization, up to sign:
/// returns prod_j r_jj = |det(A)|.
double AbsDeterminant(const Matrix& a);

/// Column-pivoted (rank-revealing) QR factorization A P = Q R of an m x n
/// matrix: `q` is m x k with orthonormal columns (k = min(m, n)), `r` is
/// k x n upper trapezoidal with a non-negative diagonal of non-increasing
/// magnitude, and `perm[j]` names the original column standing at pivot
/// position j. `rank` counts the diagonal entries above rcond * r_00 — the
/// numerical rank the pivoting reveals.
struct PivotedQrResult {
  Matrix q;
  Matrix r;
  std::vector<int64_t> perm;
  int64_t rank = 0;

  /// Q R P^T (= A up to roundoff), for testing the factorization.
  Matrix Reconstruct() const;
};

/// Businger-Golub column pivoting with downdated column norms (and the
/// LAPACK-style recompute guard against cancellation). Unlike HouseholderQr
/// this accepts any shape and any rank.
PivotedQrResult ColumnPivotedQr(const Matrix& a, double rcond = 1e-12);

/// Minimum-residual "basic" solution of min_X ||A X - B||_F through the
/// rank-revealing factorization: directions beyond the numerical rank are
/// truncated instead of divided by, so rank-deficient systems get a finite
/// least-squares solution where QrLeastSquares dies (the solution with zero
/// coefficients on the n - rank non-pivot columns, not the minimum-norm
/// one). Requires rows >= cols; B stacks one right-hand side per column.
Matrix PivotedQrLeastSquares(const Matrix& a, const Matrix& b,
                             double rcond = 1e-12);

/// Single right-hand-side convenience overload.
Vector PivotedQrLeastSquares(const Matrix& a, const Vector& b,
                             double rcond = 1e-12);

}  // namespace hdmm

#endif  // HDMM_LINALG_QR_H_
