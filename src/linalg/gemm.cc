#include "linalg/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/thread_pool.h"

namespace hdmm {
namespace {

// Below this flop count the packing traffic outweighs the blocked kernel's
// gains; a plain triple loop wins.
constexpr int64_t kNaiveFlopCutoff = int64_t{1} << 13;

// One side of a product: base pointer + leading dimension, with `trans`
// selecting whether logical element (i, j) reads p[i*ld+j] or p[j*ld+i].
// This is what lets N/T kernel variants share all the packing code.
struct Operand {
  const double* p;
  int64_t ld;
  bool trans;
};

inline double At(const Operand& o, int64_t i, int64_t j) {
  return o.trans ? o.p[j * o.ld + i] : o.p[i * o.ld + j];
}

// ------------------------------------------------------------------------
// Micro-kernels. Each computes C[0:mr, 0:nr] += sum_k ap[k][:] outer
// bp[k][:] over packed panels laid out k-major with the kernel's own MR/NR
// strides. The accumulator tile must stay in registers across the whole k
// loop, so every tier spells its tile out as named vector accumulators.
//
// The AVX2/AVX-512 tiers are compiled with per-function target attributes so
// one binary carries all of them regardless of the -march baseline (the CI
// HDMM_PORTABLE build included); cpuid picks at runtime.

using MicroKernelFn = void (*)(int64_t kc, const double* ap, const double* bp,
                               double* c, int64_t ldc, int64_t mr, int64_t nr);

// Portable 6x8: GCC generic vectors lower to whatever the baseline arch
// offers (two SSE2 ops per lane-pair without AVX), scalar elsewhere.
constexpr int kMR6 = 6;
constexpr int kNR8 = 8;

#if defined(__GNUC__)
#define HDMM_GEMM_VECTOR_KERNEL 1
#endif

#ifdef HDMM_GEMM_VECTOR_KERNEL
typedef double V4 __attribute__((vector_size(32), aligned(8)));

inline V4 LoadV(const double* p) { return *reinterpret_cast<const V4*>(p); }
inline void StoreV(double* p, V4 v) { *reinterpret_cast<V4*>(p) = v; }

// The shared 6x8 tile body: 12 accumulators + 2 B loads + 1 broadcast fits
// the 16 architectural ymm registers, the classic FMA-era budget. Expanded
// via an always_inline helper so the portable and AVX2 tiers share the
// source but get compiled for their own target.
#define HDMM_DEFINE_KERNEL_6X8(NAME, TARGET_ATTR)                             \
  TARGET_ATTR                                                                 \
  void NAME(int64_t kc, const double* __restrict__ ap,                        \
            const double* __restrict__ bp, double* __restrict__ c,            \
            int64_t ldc, int64_t mr, int64_t nr) {                            \
    V4 c00 = {0, 0, 0, 0}, c01 = c00, c10 = c00, c11 = c00, c20 = c00,        \
       c21 = c00, c30 = c00, c31 = c00, c40 = c00, c41 = c00, c50 = c00,      \
       c51 = c00;                                                             \
    for (int64_t k = 0; k < kc; ++k) {                                        \
      const double* a = ap + k * kMR6;                                        \
      const double* b = bp + k * kNR8;                                        \
      const V4 b0 = LoadV(b);                                                 \
      const V4 b1 = LoadV(b + 4);                                             \
      V4 ar = {a[0], a[0], a[0], a[0]};                                       \
      c00 += ar * b0;                                                         \
      c01 += ar * b1;                                                         \
      ar = V4{a[1], a[1], a[1], a[1]};                                        \
      c10 += ar * b0;                                                         \
      c11 += ar * b1;                                                         \
      ar = V4{a[2], a[2], a[2], a[2]};                                        \
      c20 += ar * b0;                                                         \
      c21 += ar * b1;                                                         \
      ar = V4{a[3], a[3], a[3], a[3]};                                        \
      c30 += ar * b0;                                                         \
      c31 += ar * b1;                                                         \
      ar = V4{a[4], a[4], a[4], a[4]};                                        \
      c40 += ar * b0;                                                         \
      c41 += ar * b1;                                                         \
      ar = V4{a[5], a[5], a[5], a[5]};                                        \
      c50 += ar * b0;                                                         \
      c51 += ar * b1;                                                         \
    }                                                                         \
    if (mr == kMR6 && nr == kNR8) {                                           \
      double* r;                                                              \
      r = c + 0 * ldc;                                                        \
      StoreV(r, LoadV(r) + c00);                                              \
      StoreV(r + 4, LoadV(r + 4) + c01);                                      \
      r = c + 1 * ldc;                                                        \
      StoreV(r, LoadV(r) + c10);                                              \
      StoreV(r + 4, LoadV(r + 4) + c11);                                      \
      r = c + 2 * ldc;                                                        \
      StoreV(r, LoadV(r) + c20);                                              \
      StoreV(r + 4, LoadV(r + 4) + c21);                                      \
      r = c + 3 * ldc;                                                        \
      StoreV(r, LoadV(r) + c30);                                              \
      StoreV(r + 4, LoadV(r + 4) + c31);                                      \
      r = c + 4 * ldc;                                                        \
      StoreV(r, LoadV(r) + c40);                                              \
      StoreV(r + 4, LoadV(r + 4) + c41);                                      \
      r = c + 5 * ldc;                                                        \
      StoreV(r, LoadV(r) + c50);                                              \
      StoreV(r + 4, LoadV(r + 4) + c51);                                      \
    } else {                                                                  \
      double tmp[kMR6 * kNR8];                                                \
      StoreV(tmp + 0, c00);                                                   \
      StoreV(tmp + 4, c01);                                                   \
      StoreV(tmp + 8, c10);                                                   \
      StoreV(tmp + 12, c11);                                                  \
      StoreV(tmp + 16, c20);                                                  \
      StoreV(tmp + 20, c21);                                                  \
      StoreV(tmp + 24, c30);                                                  \
      StoreV(tmp + 28, c31);                                                  \
      StoreV(tmp + 32, c40);                                                  \
      StoreV(tmp + 36, c41);                                                  \
      StoreV(tmp + 40, c50);                                                  \
      StoreV(tmp + 44, c51);                                                  \
      for (int64_t r = 0; r < mr; ++r) {                                      \
        double* crow = c + r * ldc;                                           \
        for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r * kNR8 + j];        \
      }                                                                       \
    }                                                                         \
  }

HDMM_DEFINE_KERNEL_6X8(MicroKernelPortable, )

#else   // !HDMM_GEMM_VECTOR_KERNEL: portable scalar fallback.
void MicroKernelPortable(int64_t kc, const double* __restrict__ ap,
                         const double* __restrict__ bp, double* __restrict__ c,
                         int64_t ldc, int64_t mr, int64_t nr) {
  double acc[kMR6 * kNR8] = {0.0};
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMR6;
    const double* b = bp + k * kNR8;
    for (int r = 0; r < kMR6; ++r) {
      const double ar = a[r];
      for (int j = 0; j < kNR8; ++j) acc[r * kNR8 + j] += ar * b[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r * kNR8 + j];
  }
}
#endif  // HDMM_GEMM_VECTOR_KERNEL

#if defined(__GNUC__) && defined(__x86_64__)
#define HDMM_GEMM_X86_DISPATCH 1

// AVX2 6x8: the same tile, but guaranteed ymm + FMA contractions even when
// the baseline arch is plain SSE2 (portable CI builds).
HDMM_DEFINE_KERNEL_6X8(MicroKernelAvx2,
                       __attribute__((target("avx2,fma"), noinline)))

// AVX-512 8x16: 8 rows x two zmm columns = 16 zmm accumulators, plus 2 B
// loads and 1 broadcast — 19 of the 32 architectural zmm registers, leaving
// slack for the compiler's address arithmetic. Wider than the ymm tile both
// ways: 128 doubles of C per k iteration instead of 48.
constexpr int kMR8 = 8;
constexpr int kNR16 = 16;

typedef double V8 __attribute__((vector_size(64), aligned(8)));

__attribute__((target("avx512f"), always_inline)) inline V8 LoadV8(
    const double* p) {
  return *reinterpret_cast<const V8*>(p);
}
__attribute__((target("avx512f"), always_inline)) inline void StoreV8(
    double* p, V8 v) {
  *reinterpret_cast<V8*>(p) = v;
}

__attribute__((target("avx512f"), noinline)) void MicroKernelAvx512(
    int64_t kc, const double* __restrict__ ap, const double* __restrict__ bp,
    double* __restrict__ c, int64_t ldc, int64_t mr, int64_t nr) {
  V8 c00 = {0, 0, 0, 0, 0, 0, 0, 0}, c01 = c00, c10 = c00, c11 = c00,
     c20 = c00, c21 = c00, c30 = c00, c31 = c00, c40 = c00, c41 = c00,
     c50 = c00, c51 = c00, c60 = c00, c61 = c00, c70 = c00, c71 = c00;
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMR8;
    const double* b = bp + k * kNR16;
    const V8 b0 = LoadV8(b);
    const V8 b1 = LoadV8(b + 8);
    V8 ar = {a[0], a[0], a[0], a[0], a[0], a[0], a[0], a[0]};
    c00 += ar * b0;
    c01 += ar * b1;
    ar = V8{a[1], a[1], a[1], a[1], a[1], a[1], a[1], a[1]};
    c10 += ar * b0;
    c11 += ar * b1;
    ar = V8{a[2], a[2], a[2], a[2], a[2], a[2], a[2], a[2]};
    c20 += ar * b0;
    c21 += ar * b1;
    ar = V8{a[3], a[3], a[3], a[3], a[3], a[3], a[3], a[3]};
    c30 += ar * b0;
    c31 += ar * b1;
    ar = V8{a[4], a[4], a[4], a[4], a[4], a[4], a[4], a[4]};
    c40 += ar * b0;
    c41 += ar * b1;
    ar = V8{a[5], a[5], a[5], a[5], a[5], a[5], a[5], a[5]};
    c50 += ar * b0;
    c51 += ar * b1;
    ar = V8{a[6], a[6], a[6], a[6], a[6], a[6], a[6], a[6]};
    c60 += ar * b0;
    c61 += ar * b1;
    ar = V8{a[7], a[7], a[7], a[7], a[7], a[7], a[7], a[7]};
    c70 += ar * b0;
    c71 += ar * b1;
  }
  if (mr == kMR8 && nr == kNR16) {
    double* r;
    r = c + 0 * ldc;
    StoreV8(r, LoadV8(r) + c00);
    StoreV8(r + 8, LoadV8(r + 8) + c01);
    r = c + 1 * ldc;
    StoreV8(r, LoadV8(r) + c10);
    StoreV8(r + 8, LoadV8(r + 8) + c11);
    r = c + 2 * ldc;
    StoreV8(r, LoadV8(r) + c20);
    StoreV8(r + 8, LoadV8(r + 8) + c21);
    r = c + 3 * ldc;
    StoreV8(r, LoadV8(r) + c30);
    StoreV8(r + 8, LoadV8(r + 8) + c31);
    r = c + 4 * ldc;
    StoreV8(r, LoadV8(r) + c40);
    StoreV8(r + 8, LoadV8(r + 8) + c41);
    r = c + 5 * ldc;
    StoreV8(r, LoadV8(r) + c50);
    StoreV8(r + 8, LoadV8(r + 8) + c51);
    r = c + 6 * ldc;
    StoreV8(r, LoadV8(r) + c60);
    StoreV8(r + 8, LoadV8(r + 8) + c61);
    r = c + 7 * ldc;
    StoreV8(r, LoadV8(r) + c70);
    StoreV8(r + 8, LoadV8(r + 8) + c71);
  } else {
    double tmp[kMR8 * kNR16];
    StoreV8(tmp + 0, c00);
    StoreV8(tmp + 8, c01);
    StoreV8(tmp + 16, c10);
    StoreV8(tmp + 24, c11);
    StoreV8(tmp + 32, c20);
    StoreV8(tmp + 40, c21);
    StoreV8(tmp + 48, c30);
    StoreV8(tmp + 56, c31);
    StoreV8(tmp + 64, c40);
    StoreV8(tmp + 72, c41);
    StoreV8(tmp + 80, c50);
    StoreV8(tmp + 88, c51);
    StoreV8(tmp + 96, c60);
    StoreV8(tmp + 104, c61);
    StoreV8(tmp + 112, c70);
    StoreV8(tmp + 120, c71);
    for (int64_t r = 0; r < mr; ++r) {
      double* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r * kNR16 + j];
    }
  }
}
#endif  // HDMM_GEMM_X86_DISPATCH

// ------------------------------------------------------------------------
// Kernel descriptor + runtime selection.

struct Kernel {
  GemmIsa isa;
  const char* name;
  MicroKernelFn micro;
  int mr;
  int nr;
  int64_t mc;  // A panel rows: mc x kc stays within ~half of L2.
  int64_t kc;  // Shared depth: one B strip (kc x nr) stays within ~half of L1.
  int64_t nc;  // B panel columns: kc x nc stays within ~half of L3.
};

int64_t CacheSizeOr(int name, int64_t fallback) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  long v = sysconf(name);
  if (v > 0) return static_cast<int64_t>(v);
#else
  (void)name;
#endif
  return fallback;
}

int64_t RoundDownMultiple(int64_t v, int64_t m, int64_t lo, int64_t hi) {
  v = std::min(hi, std::max(lo, v));
  return std::max(lo, (v / m) * m);
}

// Derives MC/KC/NC for a mr x nr tile from the host cache sizes (classic
// BLIS sizing at half-capacity so the other half absorbs C traffic and the
// second hyperthread). Falls back to 32K/1M/8M when sysconf can't say.
void TuneBlocking(Kernel* k) {
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  const int64_t l1 = CacheSizeOr(_SC_LEVEL1_DCACHE_SIZE, 32 << 10);
  const int64_t l2 = CacheSizeOr(_SC_LEVEL2_CACHE_SIZE, 1 << 20);
  const int64_t l3 = CacheSizeOr(_SC_LEVEL3_CACHE_SIZE, 8 << 20);
#else
  const int64_t l1 = 32 << 10, l2 = 1 << 20, l3 = 8 << 20;
#endif
  const int64_t elems = 8;  // sizeof(double)
  k->kc = RoundDownMultiple(l1 / 2 / (k->nr * elems), 8, 64, 512);
  k->mc = RoundDownMultiple(l2 / 2 / (k->kc * elems), k->mr, 2 * k->mr, 768);
  k->nc = RoundDownMultiple(l3 / 2 / (k->kc * elems), k->nr, 8 * k->nr, 4096);
}

Kernel MakeKernel(GemmIsa isa) {
  Kernel k;
  k.isa = GemmIsa::kPortable;
  k.name = "portable";
  k.micro = &MicroKernelPortable;
  k.mr = kMR6;
  k.nr = kNR8;
#ifdef HDMM_GEMM_X86_DISPATCH
  if (isa == GemmIsa::kAvx512) {
    k.isa = GemmIsa::kAvx512;
    k.name = "avx512";
    k.micro = &MicroKernelAvx512;
    k.mr = kMR8;
    k.nr = kNR16;
  } else if (isa == GemmIsa::kAvx2) {
    k.isa = GemmIsa::kAvx2;
    k.name = "avx2";
    k.micro = &MicroKernelAvx2;
    k.mr = kMR6;
    k.nr = kNR8;
  }
#else
  (void)isa;
#endif
  TuneBlocking(&k);
  return k;
}

bool HostSupports(GemmIsa isa) {
  if (isa == GemmIsa::kPortable) return true;
#ifdef HDMM_GEMM_X86_DISPATCH
  if (isa == GemmIsa::kAvx2)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (isa == GemmIsa::kAvx512) return __builtin_cpu_supports("avx512f");
#endif
  return false;
}

GemmIsa ProbeIsa() {
  // HDMM_ISA caps the tier (requests the host can't honor fall through to
  // the best supported one) — the knob behind per-ISA bench arms.
  GemmIsa cap = GemmIsa::kAvx512;
  if (const char* env = std::getenv("HDMM_ISA")) {
    const std::string s(env);
    if (s == "portable") {
      cap = GemmIsa::kPortable;
    } else if (s == "avx2") {
      cap = GemmIsa::kAvx2;
    }
  }
  if (cap == GemmIsa::kAvx512 && HostSupports(GemmIsa::kAvx512))
    return GemmIsa::kAvx512;
  if (cap >= GemmIsa::kAvx2 && HostSupports(GemmIsa::kAvx2))
    return GemmIsa::kAvx2;
  return GemmIsa::kPortable;
}

// The active kernel, selected once on first use. SetGemmIsa swaps the slot
// (bench/test only, unsynchronized against in-flight kernels by contract).
Kernel& KernelSlot() {
  static Kernel kernel = MakeKernel(ProbeIsa());
  return kernel;
}

// ------------------------------------------------------------------------
// Packing-buffer storage, 64-byte aligned so (a) zmm loads of packed strips
// never split cache lines and (b) two workers' A panels can't false-share a
// line across their buffer boundaries.
struct AlignedBuffer {
  double* data = nullptr;
  size_t capacity = 0;

  ~AlignedBuffer() { std::free(data); }

  void Reserve(size_t n) {
    if (n <= capacity) return;
    std::free(data);
    data = static_cast<double*>(std::aligned_alloc(64, ((n * 8 + 63) / 64) * 64));
    capacity = data != nullptr ? n : 0;
  }
};

// Packs the mc x kc panel of A starting at (i0, p0) into mr-row strips laid
// out k-major: buf[strip*mr*kc + k*mr + r]. Rows past mc are zero-padded so
// the micro-kernel never needs a row bound. The GEMM alpha scale is folded in
// here (once per packed element, amortized over every micro-kernel reuse).
void PackA(const Operand& a, int mr, int64_t i0, int64_t p0, int64_t mc,
           int64_t kc, double alpha, double* buf) {
  for (int64_t r0 = 0; r0 < mc; r0 += mr) {
    double* strip = buf + (r0 / mr) * mr * kc;
    const int64_t rows = std::min<int64_t>(mr, mc - r0);
    if (a.trans) {
      // Logical A(i,k) = p[k*ld + i]: both the read and the write of each k
      // slice are contiguous.
      for (int64_t k = 0; k < kc; ++k) {
        const double* src = a.p + (p0 + k) * a.ld + i0 + r0;
        double* dst = strip + k * mr;
        for (int64_t r = 0; r < rows; ++r) dst[r] = alpha * src[r];
        for (int64_t r = rows; r < mr; ++r) dst[r] = 0.0;
      }
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        const double* src = a.p + (i0 + r0 + r) * a.ld + p0;
        for (int64_t k = 0; k < kc; ++k) strip[k * mr + r] = alpha * src[k];
      }
      for (int64_t r = rows; r < mr; ++r)
        for (int64_t k = 0; k < kc; ++k) strip[k * mr + r] = 0.0;
    }
  }
}

// Packs the kc x nc panel of B starting at (p0, j0) into nr-column strips
// laid out k-major: buf[strip*nr*kc + k*nr + c], zero-padded past nc. Only
// strips [strip_begin, strip_end) are written, so the strips of one panel
// can be packed by different pool workers concurrently (each strip's bytes
// are disjoint, and strip boundaries are 64-byte aligned).
void PackBStrips(const Operand& b, int nr, int64_t p0, int64_t j0, int64_t kc,
                 int64_t nc, int64_t strip_begin, int64_t strip_end,
                 double* buf) {
  for (int64_t s = strip_begin; s < strip_end; ++s) {
    const int64_t c0 = s * nr;
    double* strip = buf + s * nr * kc;
    const int64_t cols = std::min<int64_t>(nr, nc - c0);
    if (b.trans) {
      // Logical B(k,j) = p[j*ld + k]: read each column contiguously.
      for (int64_t c = 0; c < cols; ++c) {
        const double* src = b.p + (j0 + c0 + c) * b.ld + p0;
        for (int64_t k = 0; k < kc; ++k) strip[k * nr + c] = src[k];
      }
      for (int64_t c = cols; c < nr; ++c)
        for (int64_t k = 0; k < kc; ++k) strip[k * nr + c] = 0.0;
    } else {
      for (int64_t k = 0; k < kc; ++k) {
        const double* src = b.p + (p0 + k) * b.ld + j0 + c0;
        double* dst = strip + k * nr;
        for (int64_t c = 0; c < cols; ++c) dst[c] = src[c];
        for (int64_t c = cols; c < nr; ++c) dst[c] = 0.0;
      }
    }
  }
}

// C (m x n row-major view at leading dimension ldc) += alpha * op(A) * op(B),
// with op given by the operand views. The driver always accumulates; callers
// wanting overwrite semantics zero C first (the *Into wrappers allocate
// fresh). When `lower_only` is set (SYRK callers), micro-tiles entirely above
// the view's diagonal are skipped; Gram callers mirror afterward.
//
// Parallel decomposition (the order matters for determinism): the jc/pc cache
// blocking loops stay serial on the caller, B panels are packed by the pool
// strip-by-strip, and the micro-kernel work fans out over a 2-D grid of
// (row panel) x (column chunk) tiles of C. Tiles are disjoint in C and every
// C element accumulates its kc-deep update in a single micro-kernel call, so
// the floating-point result is bit-identical for every pool width including
// the serial path — parallelism changes who computes a tile, never the order
// of the sums inside it.
void GemmDriver(int64_t m, int64_t n, int64_t k, double alpha,
                const Operand& a, const Operand& b, double* c, int64_t ldc,
                GemmParallelism par, bool lower_only) {
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  if (m * n * k < kNaiveFlopCutoff) {
    for (int64_t i = 0; i < m; ++i) {
      double* crow = c + i * ldc;
      const int64_t jmax = lower_only ? std::min(n, i + 1) : n;
      for (int64_t j = 0; j < jmax; ++j) {
        double s = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) s += At(a, i, kk) * At(b, kk, j);
        crow[j] += alpha * s;
      }
    }
    return;
  }

  // Thin-operand fast paths. The optimizer layer is dominated by products
  // with one dimension of order p ~ n/16 (rank-p updates like Theta^T V,
  // p-row strips like Theta * G): for those the BLIS packing pipeline below
  // moves more bytes than the arithmetic is worth, so stream straight off
  // the operands instead — in-order k accumulation, one output row per
  // thread, so results are independent of the thread count like the blocked
  // path's.
  constexpr int64_t kThinDim = 16;
  if (!lower_only && !b.trans && (k <= kThinDim || m <= kThinDim)) {
    // Row-axpy form: C[i, :] += sum_k alpha A(i, k) * B(k, :), every inner
    // update a contiguous SIMD axpy over a row of B.
    auto rows = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        double* crow = c + i * ldc;
        for (int64_t kk = 0; kk < k; ++kk) {
          const double aik = alpha * At(a, i, kk);
          if (aik == 0.0) continue;
          const double* brow = b.p + kk * b.ld;
          for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    };
    const int64_t grain =
        std::max<int64_t>(1, kNaiveFlopCutoff / std::max<int64_t>(1, n * k));
    if (par == GemmParallelism::kPooled) {
      ComputePool().ParallelFor(0, m, grain, rows);
    } else {
      rows(0, m);
    }
    return;
  }
  if (!lower_only && b.trans && !a.trans && n <= kThinDim) {
    // Row-dot form (the NT shape K1 Theta^T): C[i, j] += alpha <A[i, :],
    // B^T[j, :]>, both operand rows contiguous.
    auto rows = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double* arow = a.p + i * a.ld;
        double* crow = c + i * ldc;
        for (int64_t j = 0; j < n; ++j) {
          const double* bcol = b.p + j * b.ld;
          double s = 0.0;
          for (int64_t kk = 0; kk < k; ++kk) s += arow[kk] * bcol[kk];
          crow[j] += alpha * s;
        }
      }
    };
    const int64_t grain =
        std::max<int64_t>(1, kNaiveFlopCutoff / std::max<int64_t>(1, n * k));
    if (par == GemmParallelism::kPooled) {
      ComputePool().ParallelFor(0, m, grain, rows);
    } else {
      rows(0, m);
    }
    return;
  }

  const Kernel& ker = KernelSlot();
  const int mr = ker.mr;
  const int nr = ker.nr;
  const int64_t kMCb = ker.mc;
  const int64_t kKCb = ker.kc;
  const int64_t kNCb = ker.nc;

  ThreadPool& pool = ComputePool();
  const bool pooled = par == GemmParallelism::kPooled &&
                      !ThreadPool::InWorker() && pool.num_threads() > 1;

  // B panel scratch. When the pooled path may spawn tasks, the calling
  // thread helps drain *unrelated* queued tasks while it waits — and such a
  // task can itself run a GEMM on this thread, which would clobber a
  // thread-local panel under this call's readers. So only the configurations
  // with no stealing window (serial kernels, or any call made from inside a
  // pool task, where ParallelFor degrades to an inline call) reuse the
  // thread-local buffer; they are exactly the optimizer inner loops that
  // need allocation-free evaluation. The pooled path takes one call-local
  // aligned allocation, reused across every (jc, pc) pass of the call.
  const bool may_steal =
      par == GemmParallelism::kPooled && !ThreadPool::InWorker();
  thread_local AlignedBuffer tls_b_buf;
  AlignedBuffer local_b_buf;
  AlignedBuffer& b_buf = may_steal ? local_b_buf : tls_b_buf;
  b_buf.Reserve(
      static_cast<size_t>(((std::min(n, kNCb) + nr - 1) / nr) * nr *
                          std::min(k, kKCb)));

  for (int64_t jc = 0; jc < n; jc += kNCb) {
    const int64_t nc = std::min(kNCb, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKCb) {
      const int64_t kc = std::min(kKCb, k - pc);

      // Pack this pass's B panel — strip-parallel when pooled, so the
      // packing bandwidth scales with the pool instead of serializing on
      // the caller (the old decomposition's first Amdahl bottleneck).
      const int64_t num_strips = (nc + nr - 1) / nr;
      if (pooled) {
        pool.ParallelFor(0, num_strips, /*grain=*/8,
                         [&](int64_t s0, int64_t s1) {
                           PackBStrips(b, nr, pc, jc, kc, nc, s0, s1,
                                       b_buf.data);
                         });
      } else {
        PackBStrips(b, nr, pc, jc, kc, nc, 0, num_strips, b_buf.data);
      }

      // 2-D C tile grid: row panels (mc rows each) crossed with column
      // chunks of the packed panel. Row panels alone cap the task count at
      // m/mc (9 at 1024^2 — the old decomposition's second bottleneck: a
      // 16-wide pool had at most 9 tiles to chew on, and lower_only SYRK
      // skews them further); splitting columns restores a full grid. Tasks
      // are flattened (row-major over [blk][chunk]) so a contiguous stolen
      // range shares one packed A panel.
      const int64_t num_row_blocks = (m + kMCb - 1) / kMCb;
      int64_t col_chunks = 1;
      if (pooled) {
        const int64_t target = int64_t{4} * pool.num_threads();
        const int64_t max_col_chunks =
            std::max<int64_t>(1, num_strips / 4);  // >= 4 strips per chunk.
        col_chunks = std::min(
            max_col_chunks,
            (target + num_row_blocks - 1) / std::max<int64_t>(1, num_row_blocks));
      }
      const int64_t strips_per_chunk = (num_strips + col_chunks - 1) / col_chunks;

      auto tiles = [&](int64_t t0, int64_t t1) {
        // Per-thread A panel scratch, reused across calls. Safe even with
        // work stealing: the buffer is only live inside one task body, and
        // tasks never yield mid-execution.
        thread_local AlignedBuffer a_buf;
        a_buf.Reserve(static_cast<size_t>(((kMCb + mr - 1) / mr) * mr * kKCb));
        int64_t packed_blk = -1;
        for (int64_t t = t0; t < t1; ++t) {
          const int64_t blk = t / col_chunks;
          const int64_t chunk = t % col_chunks;
          const int64_t ic = blk * kMCb;
          const int64_t mc = std::min(kMCb, m - ic);
          const int64_t js_begin = chunk * strips_per_chunk * nr;
          const int64_t js_end =
              std::min(nc, (chunk + 1) * strips_per_chunk * nr);
          if (js_begin >= js_end) continue;
          // SYRK: skip tiles whose rows all lie above the diagonal.
          if (lower_only && ic + mc - 1 < jc + js_begin) continue;
          if (blk != packed_blk) {
            PackA(a, mr, ic, pc, mc, kc, alpha, a_buf.data);
            packed_blk = blk;
          }
          for (int64_t js = js_begin; js < js_end; js += nr) {
            const double* bs = b_buf.data + (js / nr) * nr * kc;
            const int64_t nrr = std::min<int64_t>(nr, nc - js);
            for (int64_t is = 0; is < mc; is += mr) {
              if (lower_only && ic + is + mr - 1 < jc + js) continue;
              ker.micro(kc, a_buf.data + (is / mr) * mr * kc, bs,
                        c + (ic + is) * ldc + jc + js, ldc,
                        std::min<int64_t>(mr, mc - is), nrr);
            }
          }
        }
      };
      if (pooled) {
        pool.ParallelFor(0, num_row_blocks * col_chunks, 1, tiles);
      } else {
        tiles(0, num_row_blocks * col_chunks);
      }
    }
  }
}

// Copies the computed lower triangle onto the upper one, making the result
// exactly symmetric (both halves come from the same accumulation).
void MirrorLowerToUpper(Matrix* c) {
  const int64_t n = c->rows();
  for (int64_t i = 0; i < n; ++i) {
    double* upper_row = c->Row(i);
    for (int64_t j = i + 1; j < n; ++j) upper_row[j] = (*c)(j, i);
  }
}

}  // namespace

GemmIsa ActiveGemmIsa() { return KernelSlot().isa; }

const char* GemmIsaName() { return KernelSlot().name; }

GemmBlocking ActiveGemmBlocking() {
  const Kernel& k = KernelSlot();
  return GemmBlocking{k.mr, k.nr, k.mc, k.kc, k.nc};
}

bool SetGemmIsa(GemmIsa isa) {
  if (!HostSupports(isa)) return false;
  KernelSlot() = MakeKernel(isa);
  return true;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c,
                GemmParallelism par) {
  HDMM_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  HDMM_CHECK_MSG(c != &a && c != &b, "MatMulInto output aliases an operand");
  c->ResizeZeroed(a.rows(), b.cols());
  GemmDriver(a.rows(), b.cols(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {b.data(), b.cols(), false}, c->data(), c->cols(), par,
             /*lower_only=*/false);
}

void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par) {
  HDMM_CHECK_MSG(a.rows() == b.rows(), "MatMulTN shape mismatch");
  HDMM_CHECK_MSG(c != &a && c != &b, "MatMulTNInto output aliases an operand");
  c->ResizeZeroed(a.cols(), b.cols());
  GemmDriver(a.cols(), b.cols(), a.rows(), 1.0, {a.data(), a.cols(), true},
             {b.data(), b.cols(), false}, c->data(), c->cols(), par,
             /*lower_only=*/false);
}

void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par) {
  HDMM_CHECK_MSG(a.cols() == b.cols(), "MatMulNT shape mismatch");
  HDMM_CHECK_MSG(c != &a && c != &b, "MatMulNTInto output aliases an operand");
  c->ResizeZeroed(a.rows(), b.rows());
  GemmDriver(a.rows(), b.rows(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {b.data(), b.cols(), true}, c->data(), c->cols(), par,
             /*lower_only=*/false);
}

void GramInto(const Matrix& a, Matrix* out, GemmParallelism par) {
  HDMM_CHECK_MSG(out != &a, "GramInto output aliases the operand");
  out->ResizeZeroed(a.cols(), a.cols());
  GemmDriver(a.cols(), a.cols(), a.rows(), 1.0, {a.data(), a.cols(), true},
             {a.data(), a.cols(), false}, out->data(), out->cols(), par,
             /*lower_only=*/true);
  MirrorLowerToUpper(out);
}

void GramOuterInto(const Matrix& a, Matrix* out, GemmParallelism par) {
  HDMM_CHECK_MSG(out != &a, "GramOuterInto output aliases the operand");
  out->ResizeZeroed(a.rows(), a.rows());
  GemmDriver(a.rows(), a.rows(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {a.data(), a.cols(), true}, out->data(), out->cols(), par,
             /*lower_only=*/true);
  MirrorLowerToUpper(out);
}

Matrix GramOuter(const Matrix& a) {
  Matrix out;
  GramOuterInto(a, &out);
  return out;
}

void GemmViewUpdate(int64_t m, int64_t n, int64_t k, double alpha,
                    const double* a, int64_t lda, bool a_trans,
                    const double* b, int64_t ldb, bool b_trans, double* c,
                    int64_t ldc, bool lower_only, GemmParallelism par) {
  GemmDriver(m, n, k, alpha, {a, lda, a_trans}, {b, ldb, b_trans}, c, ldc, par,
             lower_only);
}

}  // namespace hdmm
