#include "linalg/gemm.h"

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"

namespace hdmm {
namespace {

// Register micro-tile (kMR x kNR accumulators live in SIMD registers) and
// cache blocking: an A panel is kMC x kKC (~256 KiB, L2-resident), a B panel
// is kKC x kNC streamed through L3, and one B strip (kNR x kKC, 16 KiB)
// stays in L1 across a whole row panel. See docs/performance.md for tuning.
constexpr int kMR = 6;
constexpr int kNR = 8;
constexpr int64_t kMC = 120;
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 1024;

// Below this flop count the packing traffic outweighs the blocked kernel's
// gains; a plain triple loop wins.
constexpr int64_t kNaiveFlopCutoff = int64_t{1} << 13;

// One side of a product: base pointer + leading dimension, with `trans`
// selecting whether logical element (i, j) reads p[i*ld+j] or p[j*ld+i].
// This is what lets N/T kernel variants share all the packing code.
struct Operand {
  const double* p;
  int64_t ld;
  bool trans;
};

inline double At(const Operand& o, int64_t i, int64_t j) {
  return o.trans ? o.p[j * o.ld + i] : o.p[i * o.ld + j];
}

// Packs the mc x kc panel of A starting at (i0, p0) into kMR-row strips laid
// out k-major: buf[strip*kMR*kc + k*kMR + r]. Rows past mc are zero-padded so
// the micro-kernel never needs a row bound. The GEMM alpha scale is folded in
// here (once per packed element, amortized over every micro-kernel reuse).
void PackA(const Operand& a, int64_t i0, int64_t p0, int64_t mc, int64_t kc,
           double alpha, double* buf) {
  for (int64_t r0 = 0; r0 < mc; r0 += kMR) {
    double* strip = buf + (r0 / kMR) * kMR * kc;
    const int64_t rows = std::min<int64_t>(kMR, mc - r0);
    if (a.trans) {
      // Logical A(i,k) = p[k*ld + i]: both the read and the write of each k
      // slice are contiguous.
      for (int64_t k = 0; k < kc; ++k) {
        const double* src = a.p + (p0 + k) * a.ld + i0 + r0;
        double* dst = strip + k * kMR;
        for (int64_t r = 0; r < rows; ++r) dst[r] = alpha * src[r];
        for (int64_t r = rows; r < kMR; ++r) dst[r] = 0.0;
      }
    } else {
      for (int64_t r = 0; r < rows; ++r) {
        const double* src = a.p + (i0 + r0 + r) * a.ld + p0;
        for (int64_t k = 0; k < kc; ++k) strip[k * kMR + r] = alpha * src[k];
      }
      for (int64_t r = rows; r < kMR; ++r)
        for (int64_t k = 0; k < kc; ++k) strip[k * kMR + r] = 0.0;
    }
  }
}

// Packs the kc x nc panel of B starting at (p0, j0) into kNR-column strips
// laid out k-major: buf[strip*kNR*kc + k*kNR + c], zero-padded past nc.
void PackB(const Operand& b, int64_t p0, int64_t j0, int64_t kc, int64_t nc,
           double* buf) {
  for (int64_t c0 = 0; c0 < nc; c0 += kNR) {
    double* strip = buf + (c0 / kNR) * kNR * kc;
    const int64_t cols = std::min<int64_t>(kNR, nc - c0);
    if (b.trans) {
      // Logical B(k,j) = p[j*ld + k]: read each column contiguously.
      for (int64_t c = 0; c < cols; ++c) {
        const double* src = b.p + (j0 + c0 + c) * b.ld + p0;
        for (int64_t k = 0; k < kc; ++k) strip[k * kNR + c] = src[k];
      }
      for (int64_t c = cols; c < kNR; ++c)
        for (int64_t k = 0; k < kc; ++k) strip[k * kNR + c] = 0.0;
    } else {
      for (int64_t k = 0; k < kc; ++k) {
        const double* src = b.p + (p0 + k) * b.ld + j0 + c0;
        double* dst = strip + k * kNR;
        for (int64_t c = 0; c < cols; ++c) dst[c] = src[c];
        for (int64_t c = cols; c < kNR; ++c) dst[c] = 0.0;
      }
    }
  }
}

// C[0:mr, 0:nr] += sum_k ap[k][:] outer bp[k][:]. The kMR x kNR accumulator
// block must stay in registers across the whole k loop; a plain scalar
// accumulator array spills to the stack (GCC reloads it every iteration), so
// the primary kernel spells the 6x8 tile out as twelve named 4-wide vector
// accumulators — the classic FMA-era register budget: 12 accumulators + 2 B
// loads + 1 broadcast fits the 16 architectural ymm registers.
#if defined(__GNUC__)
#define HDMM_GEMM_VECTOR_KERNEL 1
#endif

#ifdef HDMM_GEMM_VECTOR_KERNEL
typedef double V4 __attribute__((vector_size(32), aligned(8)));

inline V4 LoadV(const double* p) { return *reinterpret_cast<const V4*>(p); }
inline void StoreV(double* p, V4 v) { *reinterpret_cast<V4*>(p) = v; }

void MicroKernel(int64_t kc, const double* __restrict__ ap,
                 const double* __restrict__ bp, double* __restrict__ c,
                 int64_t ldc, int64_t mr, int64_t nr) {
  V4 c00 = {0, 0, 0, 0}, c01 = c00, c10 = c00, c11 = c00, c20 = c00,
     c21 = c00, c30 = c00, c31 = c00, c40 = c00, c41 = c00, c50 = c00,
     c51 = c00;
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMR;
    const double* b = bp + k * kNR;
    const V4 b0 = LoadV(b);
    const V4 b1 = LoadV(b + 4);
    V4 ar = {a[0], a[0], a[0], a[0]};
    c00 += ar * b0;
    c01 += ar * b1;
    ar = V4{a[1], a[1], a[1], a[1]};
    c10 += ar * b0;
    c11 += ar * b1;
    ar = V4{a[2], a[2], a[2], a[2]};
    c20 += ar * b0;
    c21 += ar * b1;
    ar = V4{a[3], a[3], a[3], a[3]};
    c30 += ar * b0;
    c31 += ar * b1;
    ar = V4{a[4], a[4], a[4], a[4]};
    c40 += ar * b0;
    c41 += ar * b1;
    ar = V4{a[5], a[5], a[5], a[5]};
    c50 += ar * b0;
    c51 += ar * b1;
  }
  if (mr == kMR && nr == kNR) {
    double* r;
    r = c + 0 * ldc;
    StoreV(r, LoadV(r) + c00);
    StoreV(r + 4, LoadV(r + 4) + c01);
    r = c + 1 * ldc;
    StoreV(r, LoadV(r) + c10);
    StoreV(r + 4, LoadV(r + 4) + c11);
    r = c + 2 * ldc;
    StoreV(r, LoadV(r) + c20);
    StoreV(r + 4, LoadV(r + 4) + c21);
    r = c + 3 * ldc;
    StoreV(r, LoadV(r) + c30);
    StoreV(r + 4, LoadV(r + 4) + c31);
    r = c + 4 * ldc;
    StoreV(r, LoadV(r) + c40);
    StoreV(r + 4, LoadV(r + 4) + c41);
    r = c + 5 * ldc;
    StoreV(r, LoadV(r) + c50);
    StoreV(r + 4, LoadV(r + 4) + c51);
  } else {
    double tmp[kMR * kNR];
    StoreV(tmp + 0, c00);
    StoreV(tmp + 4, c01);
    StoreV(tmp + 8, c10);
    StoreV(tmp + 12, c11);
    StoreV(tmp + 16, c20);
    StoreV(tmp + 20, c21);
    StoreV(tmp + 24, c30);
    StoreV(tmp + 28, c31);
    StoreV(tmp + 32, c40);
    StoreV(tmp + 36, c41);
    StoreV(tmp + 40, c50);
    StoreV(tmp + 44, c51);
    for (int64_t r = 0; r < mr; ++r) {
      double* crow = c + r * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += tmp[r * kNR + j];
    }
  }
}
#else   // !HDMM_GEMM_VECTOR_KERNEL: portable scalar fallback.
void MicroKernel(int64_t kc, const double* __restrict__ ap,
                 const double* __restrict__ bp, double* __restrict__ c,
                 int64_t ldc, int64_t mr, int64_t nr) {
  double acc[kMR * kNR] = {0.0};
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * kMR;
    const double* b = bp + k * kNR;
    for (int r = 0; r < kMR; ++r) {
      const double ar = a[r];
      for (int j = 0; j < kNR; ++j) acc[r * kNR + j] += ar * b[j];
    }
  }
  for (int64_t r = 0; r < mr; ++r) {
    double* crow = c + r * ldc;
    for (int64_t j = 0; j < nr; ++j) crow[j] += acc[r * kNR + j];
  }
}
#endif  // HDMM_GEMM_VECTOR_KERNEL

// C (m x n row-major view at leading dimension ldc) += alpha * op(A) * op(B),
// with op given by the operand views. The driver always accumulates; callers
// wanting overwrite semantics zero C first (the *Into wrappers allocate
// fresh). When `lower_only` is set (SYRK callers), row panels entirely above
// the view's diagonal are skipped; Gram callers mirror afterward.
void GemmDriver(int64_t m, int64_t n, int64_t k, double alpha,
                const Operand& a, const Operand& b, double* c, int64_t ldc,
                GemmParallelism par, bool lower_only) {
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;

  if (m * n * k < kNaiveFlopCutoff) {
    for (int64_t i = 0; i < m; ++i) {
      double* crow = c + i * ldc;
      const int64_t jmax = lower_only ? std::min(n, i + 1) : n;
      for (int64_t j = 0; j < jmax; ++j) {
        double s = 0.0;
        for (int64_t kk = 0; kk < k; ++kk) s += At(a, i, kk) * At(b, kk, j);
        crow[j] += alpha * s;
      }
    }
    return;
  }

  // Thin-operand fast paths. The optimizer layer is dominated by products
  // with one dimension of order p ~ n/16 (rank-p updates like Theta^T V,
  // p-row strips like Theta * G): for those the BLIS packing pipeline below
  // moves more bytes than the arithmetic is worth, so stream straight off
  // the operands instead — in-order k accumulation, one output row per
  // thread, so results are independent of the thread count like the blocked
  // path's.
  constexpr int64_t kThinDim = 16;
  if (!lower_only && !b.trans && (k <= kThinDim || m <= kThinDim)) {
    // Row-axpy form: C[i, :] += sum_k alpha A(i, k) * B(k, :), every inner
    // update a contiguous SIMD axpy over a row of B.
    auto rows = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        double* crow = c + i * ldc;
        for (int64_t kk = 0; kk < k; ++kk) {
          const double aik = alpha * At(a, i, kk);
          if (aik == 0.0) continue;
          const double* brow = b.p + kk * b.ld;
          for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    };
    const int64_t grain =
        std::max<int64_t>(1, kNaiveFlopCutoff / std::max<int64_t>(1, n * k));
    if (par == GemmParallelism::kPooled) {
      ThreadPool::Global().ParallelFor(0, m, grain, rows);
    } else {
      rows(0, m);
    }
    return;
  }
  if (!lower_only && b.trans && !a.trans && n <= kThinDim) {
    // Row-dot form (the NT shape K1 Theta^T): C[i, j] += alpha <A[i, :],
    // B^T[j, :]>, both operand rows contiguous.
    auto rows = [&](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double* arow = a.p + i * a.ld;
        double* crow = c + i * ldc;
        for (int64_t j = 0; j < n; ++j) {
          const double* bcol = b.p + j * b.ld;
          double s = 0.0;
          for (int64_t kk = 0; kk < k; ++kk) s += arow[kk] * bcol[kk];
          crow[j] += alpha * s;
        }
      }
    };
    const int64_t grain =
        std::max<int64_t>(1, kNaiveFlopCutoff / std::max<int64_t>(1, n * k));
    if (par == GemmParallelism::kPooled) {
      ThreadPool::Global().ParallelFor(0, m, grain, rows);
    } else {
      rows(0, m);
    }
    return;
  }

  // B panel scratch. When the pooled path may spawn tasks, the calling
  // thread helps drain *unrelated* queued tasks while it waits — and such a
  // task can itself run a GEMM on this thread, which would clobber a
  // thread-local panel under this call's readers. So only the configurations
  // with no stealing window (serial kernels, or any call made from inside a
  // pool task, where ParallelFor degrades to an inline call) reuse the
  // thread-local buffer; they are exactly the optimizer inner loops that
  // need allocation-free evaluation.
  const bool may_steal =
      par == GemmParallelism::kPooled && !ThreadPool::InWorker();
  thread_local std::vector<double> tls_b_buf;
  std::vector<double> local_b_buf;
  std::vector<double>& b_buf = may_steal ? local_b_buf : tls_b_buf;
  b_buf.resize(
      static_cast<size_t>(((std::min(n, kNC) + kNR - 1) / kNR) * kNR * std::min(k, kKC)));

  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      PackB(b, pc, jc, kc, nc, b_buf.data());

      const int64_t num_row_blocks = (m + kMC - 1) / kMC;
      auto row_panels = [&](int64_t blk_begin, int64_t blk_end) {
        // Per-thread A panel scratch, reused across calls.
        thread_local std::vector<double> a_buf;
        a_buf.resize(static_cast<size_t>(((kMC + kMR - 1) / kMR) * kMR * kKC));
        for (int64_t blk = blk_begin; blk < blk_end; ++blk) {
          const int64_t ic = blk * kMC;
          const int64_t mc = std::min(kMC, m - ic);
          // SYRK: skip panels whose rows all lie above the diagonal.
          if (lower_only && ic + mc - 1 < jc) continue;
          PackA(a, ic, pc, mc, kc, alpha, a_buf.data());
          for (int64_t js = 0; js < nc; js += kNR) {
            const double* bs = b_buf.data() + (js / kNR) * kNR * kc;
            const int64_t nr = std::min<int64_t>(kNR, nc - js);
            for (int64_t is = 0; is < mc; is += kMR) {
              if (lower_only && ic + is + kMR - 1 < jc + js) continue;
              MicroKernel(kc, a_buf.data() + (is / kMR) * kMR * kc, bs,
                          c + (ic + is) * ldc + jc + js, ldc,
                          std::min<int64_t>(kMR, mc - is), nr);
            }
          }
        }
      };
      if (par == GemmParallelism::kPooled) {
        ThreadPool::Global().ParallelFor(0, num_row_blocks, 1, row_panels);
      } else {
        row_panels(0, num_row_blocks);
      }
    }
  }
}

// Copies the computed lower triangle onto the upper one, making the result
// exactly symmetric (both halves come from the same accumulation).
void MirrorLowerToUpper(Matrix* c) {
  const int64_t n = c->rows();
  for (int64_t i = 0; i < n; ++i) {
    double* upper_row = c->Row(i);
    for (int64_t j = i + 1; j < n; ++j) upper_row[j] = (*c)(j, i);
  }
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c,
                GemmParallelism par) {
  HDMM_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  HDMM_CHECK_MSG(c != &a && c != &b, "MatMulInto output aliases an operand");
  c->ResizeZeroed(a.rows(), b.cols());
  GemmDriver(a.rows(), b.cols(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {b.data(), b.cols(), false}, c->data(), c->cols(), par,
             /*lower_only=*/false);
}

void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par) {
  HDMM_CHECK_MSG(a.rows() == b.rows(), "MatMulTN shape mismatch");
  HDMM_CHECK_MSG(c != &a && c != &b, "MatMulTNInto output aliases an operand");
  c->ResizeZeroed(a.cols(), b.cols());
  GemmDriver(a.cols(), b.cols(), a.rows(), 1.0, {a.data(), a.cols(), true},
             {b.data(), b.cols(), false}, c->data(), c->cols(), par,
             /*lower_only=*/false);
}

void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par) {
  HDMM_CHECK_MSG(a.cols() == b.cols(), "MatMulNT shape mismatch");
  HDMM_CHECK_MSG(c != &a && c != &b, "MatMulNTInto output aliases an operand");
  c->ResizeZeroed(a.rows(), b.rows());
  GemmDriver(a.rows(), b.rows(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {b.data(), b.cols(), true}, c->data(), c->cols(), par,
             /*lower_only=*/false);
}

void GramInto(const Matrix& a, Matrix* out, GemmParallelism par) {
  HDMM_CHECK_MSG(out != &a, "GramInto output aliases the operand");
  out->ResizeZeroed(a.cols(), a.cols());
  GemmDriver(a.cols(), a.cols(), a.rows(), 1.0, {a.data(), a.cols(), true},
             {a.data(), a.cols(), false}, out->data(), out->cols(), par,
             /*lower_only=*/true);
  MirrorLowerToUpper(out);
}

void GramOuterInto(const Matrix& a, Matrix* out, GemmParallelism par) {
  HDMM_CHECK_MSG(out != &a, "GramOuterInto output aliases the operand");
  out->ResizeZeroed(a.rows(), a.rows());
  GemmDriver(a.rows(), a.rows(), a.cols(), 1.0, {a.data(), a.cols(), false},
             {a.data(), a.cols(), true}, out->data(), out->cols(), par,
             /*lower_only=*/true);
  MirrorLowerToUpper(out);
}

Matrix GramOuter(const Matrix& a) {
  Matrix out;
  GramOuterInto(a, &out);
  return out;
}

void GemmViewUpdate(int64_t m, int64_t n, int64_t k, double alpha,
                    const double* a, int64_t lda, bool a_trans,
                    const double* b, int64_t ldb, bool b_trans, double* c,
                    int64_t ldc, bool lower_only, GemmParallelism par) {
  GemmDriver(m, n, k, alpha, {a, lda, a_trans}, {b, ldb, b_trans}, c, ldc, par,
             lower_only);
}

}  // namespace hdmm
