// Kronecker-product machinery: the compact implicit representation at the
// heart of HDMM (Section 4) and the kmatvec algorithm (Appendix A.5).
#ifndef HDMM_LINALG_KRON_H_
#define HDMM_LINALG_KRON_H_

#include <memory>
#include <vector>

#include "linalg/linear_operator.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Explicit Kronecker product of two matrices (Definition 8). For tests and
/// small domains only: output has rows(a)*rows(b) x cols(a)*cols(b) entries.
Matrix KronExplicit(const Matrix& a, const Matrix& b);

/// Explicit Kronecker product of a list of factors, folded left to right.
Matrix KronExplicit(const std::vector<Matrix>& factors);

/// Kronecker product of vectors (row-major flattening convention).
Vector KronVector(const std::vector<Vector>& factors);

/// y = (A_1 x ... x A_d) x computed without materializing the product
/// (Algorithm "kmatvec", Appendix A.5). Time O(sum_i m_i * n_i * N / n_i),
/// space O(N).
Vector KronMatVec(const std::vector<const Matrix*>& factors, const Vector& x);

/// Convenience overload for owned factor lists.
Vector KronMatVec(const std::vector<Matrix>& factors, const Vector& x);

/// y = (A_1 x ... x A_d)^T x, via kmatvec on the transposed factors.
Vector KronMatTVec(const std::vector<Matrix>& factors, const Vector& x);

/// Thread-parallel kmatvec. Section 9 of the paper observes that "the
/// decomposed structure of our strategies should lead to even faster
/// specialized parallel solutions"; this is that specialization. Each
/// per-factor pass is a batch of N/n_i independent small mat-vecs, split
/// across threads along the batch dimension — output slices are disjoint, so
/// the result is bit-identical to the serial KronMatVec. Work runs on the
/// shared ThreadPool; `num_threads == 1` forces the serial path, any other
/// value uses the pool's width. Small inputs fall back to the serial path
/// (threading overhead dominates below ~2^16 flops per pass).
Vector KronMatVecParallel(const std::vector<Matrix>& factors, const Vector& x,
                          int num_threads = 0);

/// Parallel transpose kmatvec (see KronMatVecParallel).
Vector KronMatTVecParallel(const std::vector<Matrix>& factors,
                           const Vector& x, int num_threads = 0);

/// Implicit Kronecker-product operator over owned factors.
class KronOperator : public LinearOperator {
 public:
  using LinearOperator::Apply;
  using LinearOperator::ApplyTranspose;
  explicit KronOperator(std::vector<Matrix> factors);
  int64_t Rows() const override { return rows_; }
  int64_t Cols() const override { return cols_; }
  void Apply(const Vector& x, Vector* y) const override;
  void ApplyTranspose(const Vector& x, Vector* y) const override;
  const std::vector<Matrix>& factors() const { return factors_; }

 private:
  std::vector<Matrix> factors_;
  int64_t rows_;
  int64_t cols_;
};

/// Sensitivity of a Kronecker strategy (Theorem 3):
/// ||A_1 x ... x A_d||_1 = prod_i ||A_i||_1.
double KronSensitivity(const std::vector<Matrix>& factors);

}  // namespace hdmm

#endif  // HDMM_LINALG_KRON_H_
