// Implicit linear operators. The paper's central trick is never materializing
// workload or strategy matrices; everything downstream (measurement, LSMR
// inference, trace estimation) only needs matrix-vector products.
#ifndef HDMM_LINALG_LINEAR_OPERATOR_H_
#define HDMM_LINALG_LINEAR_OPERATOR_H_

#include <memory>
#include <vector>

#include "linalg/matrix.h"

namespace hdmm {

/// Abstract y = A x / y = A^T x interface.
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual int64_t Rows() const = 0;
  virtual int64_t Cols() const = 0;

  /// y = A x. `y` is resized and overwritten.
  virtual void Apply(const Vector& x, Vector* y) const = 0;

  /// y = A^T x. `y` is resized and overwritten.
  virtual void ApplyTranspose(const Vector& x, Vector* y) const = 0;

  /// Convenience wrappers returning by value.
  Vector Apply(const Vector& x) const;
  Vector ApplyTranspose(const Vector& x) const;
};

/// Wraps an explicit dense matrix (not owned copies: holds its own copy).
class DenseOperator : public LinearOperator {
 public:
  using LinearOperator::Apply;
  using LinearOperator::ApplyTranspose;
  explicit DenseOperator(Matrix a) : a_(std::move(a)) {}
  int64_t Rows() const override { return a_.rows(); }
  int64_t Cols() const override { return a_.cols(); }
  void Apply(const Vector& x, Vector* y) const override;
  void ApplyTranspose(const Vector& x, Vector* y) const override;

  /// The wrapped matrix; lets callers take dense-only fast paths (e.g. a
  /// one-shot SYRK Gram instead of repeated operator applications).
  const Matrix& matrix() const { return a_; }

 private:
  Matrix a_;
};

/// alpha * A for an owned operator.
class ScaledOperator : public LinearOperator {
 public:
  using LinearOperator::Apply;
  using LinearOperator::ApplyTranspose;
  ScaledOperator(double alpha, std::shared_ptr<const LinearOperator> a)
      : alpha_(alpha), a_(std::move(a)) {}
  int64_t Rows() const override { return a_->Rows(); }
  int64_t Cols() const override { return a_->Cols(); }
  void Apply(const Vector& x, Vector* y) const override;
  void ApplyTranspose(const Vector& x, Vector* y) const override;

 private:
  double alpha_;
  std::shared_ptr<const LinearOperator> a_;
};

/// Vertical stack [A1; A2; ...]; all blocks share a column count.
class StackedOperator : public LinearOperator {
 public:
  using LinearOperator::Apply;
  using LinearOperator::ApplyTranspose;
  explicit StackedOperator(
      std::vector<std::shared_ptr<const LinearOperator>> blocks);
  int64_t Rows() const override { return rows_; }
  int64_t Cols() const override { return cols_; }
  void Apply(const Vector& x, Vector* y) const override;
  void ApplyTranspose(const Vector& x, Vector* y) const override;

 private:
  std::vector<std::shared_ptr<const LinearOperator>> blocks_;
  int64_t rows_;
  int64_t cols_;
};

/// Symmetric operator A^T A built from A (e.g., for CG solves).
class GramOperator : public LinearOperator {
 public:
  using LinearOperator::Apply;
  using LinearOperator::ApplyTranspose;
  explicit GramOperator(std::shared_ptr<const LinearOperator> a)
      : a_(std::move(a)) {}
  int64_t Rows() const override { return a_->Cols(); }
  int64_t Cols() const override { return a_->Cols(); }
  void Apply(const Vector& x, Vector* y) const override;
  void ApplyTranspose(const Vector& x, Vector* y) const override {
    Apply(x, y);
  }

 private:
  std::shared_ptr<const LinearOperator> a_;
};

}  // namespace hdmm

#endif  // HDMM_LINALG_LINEAR_OPERATOR_H_
