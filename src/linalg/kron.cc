#include "linalg/kron.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace hdmm {
namespace {

// One per-factor pass of kmatvec restricted to batch columns
// [col_begin, col_end): next[r * rest + c] += a(r, k) * y[c * ni + k].
// Writes are disjoint across column ranges, which is what makes the
// parallel split below race-free and bit-identical to the serial loop.
void KmatvecPassSlice(const Matrix& a, const Vector& y, int64_t rest,
                      int64_t col_begin, int64_t col_end, Vector* next) {
  const int64_t ni = a.cols();
  for (int64_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.Row(r);
    double* out = next->data() + r * rest;
    for (int64_t k = 0; k < ni; ++k) {
      const double ark = arow[k];
      if (ark == 0.0) continue;
      const double* in = y.data() + k;
      for (int64_t c = col_begin; c < col_end; ++c) out[c] += ark * in[c * ni];
    }
  }
}

}  // namespace

Matrix KronExplicit(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      const double aij = a(i, j);
      if (aij == 0.0) continue;
      for (int64_t k = 0; k < b.rows(); ++k) {
        for (int64_t l = 0; l < b.cols(); ++l) {
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
        }
      }
    }
  }
  return out;
}

Matrix KronExplicit(const std::vector<Matrix>& factors) {
  HDMM_CHECK(!factors.empty());
  Matrix acc = factors[0];
  for (size_t i = 1; i < factors.size(); ++i)
    acc = KronExplicit(acc, factors[i]);
  return acc;
}

Vector KronVector(const std::vector<Vector>& factors) {
  HDMM_CHECK(!factors.empty());
  Vector acc = factors[0];
  for (size_t f = 1; f < factors.size(); ++f) {
    const Vector& b = factors[f];
    Vector next(acc.size() * b.size());
    size_t idx = 0;
    for (double av : acc)
      for (double bv : b) next[idx++] = av * bv;
    acc = std::move(next);
  }
  return acc;
}

Vector KronMatVec(const std::vector<const Matrix*>& factors, const Vector& x) {
  HDMM_CHECK(!factors.empty());
  int64_t n_total = 1;
  for (const Matrix* f : factors) n_total *= f->cols();
  HDMM_CHECK(static_cast<int64_t>(x.size()) == n_total);

  // Appendix A.5: repeatedly peel off the last factor.
  Vector y = x;
  int64_t cur = n_total;  // current length of y
  for (int64_t i = static_cast<int64_t>(factors.size()) - 1; i >= 0; --i) {
    const Matrix& a = *factors[static_cast<size_t>(i)];
    const int64_t ni = a.cols();
    const int64_t mi = a.rows();
    const int64_t rest = cur / ni;  // = N_i / n_i
    // Z = transpose(reshape(y, rest, ni)) is ni x rest; Y' = A * Z is
    // mi x rest, flattened row-major into the new y.
    Vector next(static_cast<size_t>(mi * rest), 0.0);
    for (int64_t r = 0; r < mi; ++r) {
      const double* arow = a.Row(r);
      double* out = next.data() + r * rest;
      for (int64_t k = 0; k < ni; ++k) {
        const double ark = arow[k];
        if (ark == 0.0) continue;
        // Column k of reshape(y, rest, ni) laid out with stride ni.
        const double* in = y.data() + k;
        for (int64_t c = 0; c < rest; ++c) out[c] += ark * in[c * ni];
      }
    }
    y = std::move(next);
    cur = mi * rest;
  }
  return y;
}

Vector KronMatVec(const std::vector<Matrix>& factors, const Vector& x) {
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(factors.size());
  for (const Matrix& f : factors) ptrs.push_back(&f);
  return KronMatVec(ptrs, x);
}

Vector KronMatTVec(const std::vector<Matrix>& factors, const Vector& x) {
  std::vector<Matrix> transposed;
  transposed.reserve(factors.size());
  for (const Matrix& f : factors) transposed.push_back(f.Transposed());
  return KronMatVec(transposed, x);
}

Vector KronMatVecParallel(const std::vector<Matrix>& factors, const Vector& x,
                          int num_threads) {
  HDMM_CHECK(!factors.empty());
  int64_t n_total = 1;
  for (const Matrix& f : factors) n_total *= f.cols();
  HDMM_CHECK(static_cast<int64_t>(x.size()) == n_total);

  Vector y = x;
  int64_t cur = n_total;
  for (int64_t i = static_cast<int64_t>(factors.size()) - 1; i >= 0; --i) {
    const Matrix& a = factors[static_cast<size_t>(i)];
    const int64_t ni = a.cols();
    const int64_t mi = a.rows();
    const int64_t rest = cur / ni;
    Vector next(static_cast<size_t>(mi * rest), 0.0);

    // Column ranges write disjoint slices of `next`, so the pass splits over
    // the shared pool race-free. Threading pays off only when this pass does
    // enough work; num_threads == 1 forces the serial path for callers that
    // want deterministic single-threaded timing.
    const int64_t flops = mi * ni * rest;
    if (num_threads == 1 || flops < (int64_t{1} << 16)) {
      KmatvecPassSlice(a, y, rest, 0, rest, &next);
    } else {
      ComputePool().ParallelFor(
          0, rest, /*grain=*/1024, [&](int64_t begin, int64_t end) {
            KmatvecPassSlice(a, y, rest, begin, end, &next);
          });
    }
    y = std::move(next);
    cur = mi * rest;
  }
  return y;
}

Vector KronMatTVecParallel(const std::vector<Matrix>& factors,
                           const Vector& x, int num_threads) {
  std::vector<Matrix> transposed;
  transposed.reserve(factors.size());
  for (const Matrix& f : factors) transposed.push_back(f.Transposed());
  return KronMatVecParallel(transposed, x, num_threads);
}

KronOperator::KronOperator(std::vector<Matrix> factors)
    : factors_(std::move(factors)), rows_(1), cols_(1) {
  HDMM_CHECK(!factors_.empty());
  for (const Matrix& f : factors_) {
    rows_ *= f.rows();
    cols_ *= f.cols();
  }
}

void KronOperator::Apply(const Vector& x, Vector* y) const {
  *y = KronMatVec(factors_, x);
}

void KronOperator::ApplyTranspose(const Vector& x, Vector* y) const {
  *y = KronMatTVec(factors_, x);
}

double KronSensitivity(const std::vector<Matrix>& factors) {
  double s = 1.0;
  for (const Matrix& f : factors) s *= f.MaxAbsColSum();
  return s;
}

}  // namespace hdmm
