#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/gemm.h"

namespace hdmm {
namespace {

// Factorization panel width / solve block height. 64 keeps one diagonal block
// (64x64x8B = 32 KiB) L1-resident for the scalar panel work while making the
// trailing SYRK updates rank-64 — deep enough that the GEMM substrate runs at
// full blocked speed.
constexpr int64_t kPanel = 64;

}  // namespace

bool CholeskyFactor(const Matrix& x, Matrix* l) {
  HDMM_CHECK(x.rows() == x.cols());
  const int64_t n = x.rows();
  *l = x;
  Matrix& a = *l;
  for (int64_t k = 0; k < n; k += kPanel) {
    const int64_t nb = std::min<int64_t>(kPanel, n - k);
    // Diagonal block: scalar factorization of A[k:k+nb, k:k+nb]. Earlier
    // panels' contributions were already subtracted by trailing updates, so
    // the inner dot products only span the block's own columns.
    for (int64_t i = k; i < k + nb; ++i) {
      double* ai = a.Row(i);
      for (int64_t j = k; j <= i; ++j) {
        const double* aj = a.Row(j);
        double s = ai[j];
        for (int64_t t = k; t < j; ++t) s -= ai[t] * aj[t];
        if (i == j) {
          if (s <= 0.0 || !std::isfinite(s)) return false;
          ai[i] = std::sqrt(s);
        } else {
          ai[j] = s / aj[j];
        }
      }
    }
    const int64_t rest = n - k - nb;
    if (rest == 0) continue;
    // Panel TRSM: L21 = A21 L11^{-T}. Each row of the panel is an
    // independent forward substitution against L11, so rows fan out over the
    // shared pool.
    ThreadPool& pool = ComputePool();
    pool.ParallelFor(
        k + nb, n, /*grain=*/16, [&](int64_t r0, int64_t r1) {
          for (int64_t r = r0; r < r1; ++r) {
            double* row = a.Row(r) + k;
            for (int64_t j = 0; j < nb; ++j) {
              const double* lj = a.Row(k + j) + k;
              double s = row[j];
              for (int64_t t = 0; t < j; ++t) s -= lj[t] * row[t];
              row[j] = s / lj[j];
            }
          }
        });
    // Trailing SYRK: A22 -= L21 L21^T, lower triangle only. This is where
    // the n^3/3 bulk of the factorization runs, at blocked-GEMM speed. The
    // trailing matrix fans out by block-column: task cb updates the panel
    // A[j0:n, j0:j0+w] (j0 = k + nb + cb*kPanel) with its own rank-nb GEMM —
    // independent macro-panels, no shared packing buffers. The decomposition
    // is the same at every pool width (on a 1-wide pool ParallelFor runs it
    // inline), so the factor is bit-identical whether 1 or 16 threads run
    // it; the extra per-block A packing costs ~1/kPanel of the update's
    // flops. Tasks are issued widest-block first purely for balance.
    const int64_t trail_blocks = (rest + kPanel - 1) / kPanel;
    pool.ParallelFor(0, trail_blocks, /*grain=*/1, [&](int64_t b0,
                                                       int64_t b1) {
      for (int64_t cb = b0; cb < b1; ++cb) {
        const int64_t j0 = k + nb + cb * kPanel;
        const int64_t w = std::min<int64_t>(kPanel, n - j0);
        GemmViewUpdate(n - j0, w, nb, -1.0, a.Row(j0) + k, n, false,
                       a.Row(j0) + k, n, true, a.Row(j0) + j0, n,
                       /*lower_only=*/true, GemmParallelism::kSerial);
      }
    });
  }
  // Only the lower triangle was factored; clear the copied-over upper part.
  for (int64_t i = 0; i < n; ++i) {
    double* row = a.Row(i);
    for (int64_t j = i + 1; j < n; ++j) row[j] = 0.0;
  }
  return true;
}

void ForwardSubstitute(const Matrix& l, Vector* b) {
  const int64_t n = l.rows();
  for (int64_t i = 0; i < n; ++i) {
    double s = (*b)[static_cast<size_t>(i)];
    const double* li = l.Row(i);
    for (int64_t k = 0; k < i; ++k) s -= li[k] * (*b)[static_cast<size_t>(k)];
    (*b)[static_cast<size_t>(i)] = s / li[i];
  }
}

void BackwardSubstituteTranspose(const Matrix& l, Vector* b) {
  const int64_t n = l.rows();
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = (*b)[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k)
      s -= l(k, i) * (*b)[static_cast<size_t>(k)];
    (*b)[static_cast<size_t>(i)] = s / l(i, i);
  }
}

void ForwardSubstituteMatrix(const Matrix& l, Matrix* b) {
  HDMM_CHECK(l.rows() == l.cols() && l.rows() == b->rows());
  const int64_t n = l.rows();
  const int64_t m = b->cols();
  if (m == 0) return;
  for (int64_t k = 0; k < n; k += kPanel) {
    const int64_t nb = std::min<int64_t>(kPanel, n - k);
    // Diagonal-block solve, vectorized along the RHS columns: every inner
    // operation is a contiguous axpy across a whole row of B.
    for (int64_t i = k; i < k + nb; ++i) {
      double* bi = b->Row(i);
      const double* li = l.Row(i);
      for (int64_t t = k; t < i; ++t) {
        const double c = li[t];
        if (c == 0.0) continue;
        const double* bt = b->Row(t);
        for (int64_t j = 0; j < m; ++j) bi[j] -= c * bt[j];
      }
      const double inv = 1.0 / li[i];
      for (int64_t j = 0; j < m; ++j) bi[j] *= inv;
    }
    // Push the finished panel into every row below in one GEMM:
    // B[k+nb:, :] -= L[k+nb:, k:k+nb] * B[k:k+nb, :].
    GemmViewUpdate(n - k - nb, m, nb, -1.0, l.Row(k + nb) + k, n, false,
                   b->Row(k), m, false, b->Row(k + nb), m,
                   /*lower_only=*/false);
  }
}

void BackwardSubstituteTransposeMatrix(const Matrix& l, Matrix* b) {
  HDMM_CHECK(l.rows() == l.cols() && l.rows() == b->rows());
  const int64_t n = l.rows();
  const int64_t m = b->cols();
  if (m == 0 || n == 0) return;
  for (int64_t k = ((n - 1) / kPanel) * kPanel; k >= 0; k -= kPanel) {
    const int64_t nb = std::min<int64_t>(kPanel, n - k);
    // Diagonal-block solve against L11^T, bottom row first.
    for (int64_t i = k + nb - 1; i >= k; --i) {
      double* bi = b->Row(i);
      for (int64_t t = i + 1; t < k + nb; ++t) {
        const double c = l(t, i);
        if (c == 0.0) continue;
        const double* bt = b->Row(t);
        for (int64_t j = 0; j < m; ++j) bi[j] -= c * bt[j];
      }
      const double inv = 1.0 / l(i, i);
      for (int64_t j = 0; j < m; ++j) bi[j] *= inv;
    }
    // Rows above the block: B[0:k, :] -= L[k:k+nb, 0:k]^T * B[k:k+nb, :].
    if (k > 0) {
      GemmViewUpdate(k, m, nb, -1.0, l.Row(k), n, true, b->Row(k), m, false,
                     b->data(), m, /*lower_only=*/false);
    }
  }
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  Vector y = b;
  ForwardSubstitute(l, &y);
  BackwardSubstituteTranspose(l, &y);
  return y;
}

void CholeskySolveMatrixInto(const Matrix& l, const Matrix& b, Matrix* out) {
  HDMM_CHECK(l.rows() == b.rows());
  if (out != &b) *out = b;
  ForwardSubstituteMatrix(l, out);
  BackwardSubstituteTransposeMatrix(l, out);
}

Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b) {
  Matrix out;
  CholeskySolveMatrixInto(l, b, &out);
  return out;
}

void CholeskySolveRowsInto(const Matrix& l, const Matrix& b, Matrix* out,
                           GemmParallelism par) {
  HDMM_CHECK(l.rows() == l.cols() && l.rows() == b.cols());
  const int64_t p = l.rows();
  const int64_t rows = b.rows();
  if (out != &b) *out = b;  // Copy-assign reuses out's storage when sized.
  if (p == 0 || rows == 0) return;
  auto body = [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      double* x = out->Row(r);
      // Row solve y X = x for symmetric X = L L^T: x = (L L^T y^T)^T, so a
      // forward substitution (L z = x) then a backward one (L^T y = z),
      // both on the contiguous length-p row.
      for (int64_t i = 0; i < p; ++i) {
        const double* li = l.Row(i);
        double s = x[i];
        for (int64_t t = 0; t < i; ++t) s -= li[t] * x[t];
        x[i] = s / li[i];
      }
      for (int64_t i = p - 1; i >= 0; --i) {
        double s = x[i];
        for (int64_t t = i + 1; t < p; ++t) s -= l(t, i) * x[t];
        x[i] = s / l(i, i);
      }
    }
  };
  if (par == GemmParallelism::kPooled) {
    ComputePool().ParallelFor(0, rows, /*grain=*/32, body);
  } else {
    body(0, rows);
  }
}

Matrix SpdInverse(const Matrix& x) {
  Matrix l;
  HDMM_CHECK_MSG(CholeskyFactor(x, &l), "SpdInverse: matrix not SPD");
  Matrix out;
  CholeskySolveMatrixInto(l, Matrix::Identity(x.rows()), &out);
  return out;
}

double TraceSolveSpd(const Matrix& x, const Matrix& g) {
  HDMM_CHECK(x.rows() == g.rows() && x.cols() == g.cols());
  Matrix l;
  HDMM_CHECK_MSG(CholeskyFactor(x, &l), "TraceSolveSpd: matrix not SPD");
  // tr[X^{-1} G]: one blocked multi-RHS solve, then read the diagonal.
  Matrix z;
  CholeskySolveMatrixInto(l, g, &z);
  return z.Trace();
}

}  // namespace hdmm
