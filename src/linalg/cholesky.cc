#include "linalg/cholesky.h"

#include <cmath>

namespace hdmm {

bool CholeskyFactor(const Matrix& x, Matrix* l) {
  HDMM_CHECK(x.rows() == x.cols());
  const int64_t n = x.rows();
  *l = Matrix::Zeros(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double s = x(i, j);
      const double* li = l->Row(i);
      const double* lj = l->Row(j);
      for (int64_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) return false;
        (*l)(i, i) = std::sqrt(s);
      } else {
        (*l)(i, j) = s / (*l)(j, j);
      }
    }
  }
  return true;
}

void ForwardSubstitute(const Matrix& l, Vector* b) {
  const int64_t n = l.rows();
  for (int64_t i = 0; i < n; ++i) {
    double s = (*b)[static_cast<size_t>(i)];
    const double* li = l.Row(i);
    for (int64_t k = 0; k < i; ++k) s -= li[k] * (*b)[static_cast<size_t>(k)];
    (*b)[static_cast<size_t>(i)] = s / li[i];
  }
}

void BackwardSubstituteTranspose(const Matrix& l, Vector* b) {
  const int64_t n = l.rows();
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = (*b)[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k)
      s -= l(k, i) * (*b)[static_cast<size_t>(k)];
    (*b)[static_cast<size_t>(i)] = s / l(i, i);
  }
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  Vector y = b;
  ForwardSubstitute(l, &y);
  BackwardSubstituteTranspose(l, &y);
  return y;
}

Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b) {
  HDMM_CHECK(l.rows() == b.rows());
  Matrix out(b.rows(), b.cols());
  for (int64_t j = 0; j < b.cols(); ++j) {
    Vector col = b.ColVector(j);
    Vector sol = CholeskySolve(l, col);
    for (int64_t i = 0; i < b.rows(); ++i) out(i, j) = sol[static_cast<size_t>(i)];
  }
  return out;
}

Matrix SpdInverse(const Matrix& x) {
  Matrix l;
  HDMM_CHECK_MSG(CholeskyFactor(x, &l), "SpdInverse: matrix not SPD");
  return CholeskySolveMatrix(l, Matrix::Identity(x.rows()));
}

double TraceSolveSpd(const Matrix& x, const Matrix& g) {
  HDMM_CHECK(x.rows() == g.rows() && x.cols() == g.cols());
  Matrix l;
  HDMM_CHECK_MSG(CholeskyFactor(x, &l), "TraceSolveSpd: matrix not SPD");
  // tr[X^{-1} G] = sum_j e_j^T X^{-1} G e_j = sum_j (X^{-1} g_j)_j.
  double tr = 0.0;
  for (int64_t j = 0; j < g.cols(); ++j) {
    Vector col = g.ColVector(j);
    Vector sol = CholeskySolve(l, col);
    tr += sol[static_cast<size_t>(j)];
  }
  return tr;
}

}  // namespace hdmm
