// Hutchinson stochastic trace estimation of tr[X^{-1} G] for implicit SPD X.
// Lets us evaluate the expected error of strategies that are neither Kronecker
// products nor marginals (e.g., QuadTree at 256x256) without densifying.
#ifndef HDMM_LINALG_TRACE_ESTIMATOR_H_
#define HDMM_LINALG_TRACE_ESTIMATOR_H_

#include "common/rng.h"
#include "linalg/cg.h"
#include "linalg/linear_operator.h"

namespace hdmm {

/// Options for the Hutchinson estimator.
struct TraceEstimatorOptions {
  int num_samples = 32;
  CgOptions cg;
};

/// Estimates tr[X^{-1} G] where X is SPD, using Rademacher probes:
/// tr[X^{-1} G] = E_z[z^T X^{-1} G z]. Each sample costs one CG solve with X
/// plus one product with G. Standard error decreases as 1/sqrt(samples).
double EstimateTraceInvProduct(const LinearOperator& x,
                               const LinearOperator& g, Rng* rng,
                               const TraceEstimatorOptions& options =
                                   TraceEstimatorOptions());

}  // namespace hdmm

#endif  // HDMM_LINALG_TRACE_ESTIMATOR_H_
