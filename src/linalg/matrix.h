// Dense row-major matrix of doubles plus the core BLAS-like kernels the rest
// of the library depends on. Eigen is deliberately not a dependency: this file
// is the project's linear-algebra substrate.
#ifndef HDMM_LINALG_MATRIX_H_
#define HDMM_LINALG_MATRIX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "linalg/vector_ops.h"

namespace hdmm {

class Rng;

/// Dense row-major matrix of doubles.
///
/// The class is a value type: copyable, movable, comparable for testing via
/// MaxAbsDiff. Heavy kernels (matrix products) live as free functions below.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix, zero-initialized.
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols), data_(CheckedSize(rows, cols), 0.0) {}

  /// rows x cols matrix initialized from row-major data.
  Matrix(int64_t rows, int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    HDMM_CHECK(data_.size() == CheckedSize(rows, cols));
  }

  /// n x n identity.
  static Matrix Identity(int64_t n);

  /// rows x cols of all zeros.
  static Matrix Zeros(int64_t rows, int64_t cols);

  /// rows x cols of all ones.
  static Matrix Ones(int64_t rows, int64_t cols);

  /// Diagonal matrix with the given entries.
  static Matrix Diagonal(const Vector& d);

  /// rows x cols with iid Uniform[lo, hi) entries.
  static Matrix RandomUniform(int64_t rows, int64_t cols, Rng* rng,
                              double lo = 0.0, double hi = 1.0);

  /// Build from nested initializer-style rows (for tests/examples).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double& operator()(int64_t i, int64_t j) {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }
  double operator()(int64_t i, int64_t j) const {
    return data_[static_cast<size_t>(i * cols_ + j)];
  }

  /// Pointer to the start of row i.
  double* Row(int64_t i) { return data_.data() + i * cols_; }
  const double* Row(int64_t i) const { return data_.data() + i * cols_; }

  /// Raw row-major storage.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& storage() const { return data_; }

  /// Reshapes to rows x cols and zero-fills, reusing the existing heap
  /// allocation whenever the new element count fits its capacity. This is
  /// the workspace-reuse fast path under the *Into kernels: repeated
  /// same-shape calls (optimizer inner loops) touch the heap zero times.
  void ResizeZeroed(int64_t rows, int64_t cols) {
    const size_t n = CheckedSize(rows, cols);
    rows_ = rows;
    cols_ = cols;
    data_.assign(n, 0.0);
  }

  /// Transposed copy.
  Matrix Transposed() const;

  /// In-place scalar multiply.
  void ScaleInPlace(double alpha);

  /// this += alpha * other (same shape).
  void AddInPlace(const Matrix& other, double alpha = 1.0);

  /// Copies row i into a vector.
  Vector RowVector(int64_t i) const;

  /// Copies column j into a vector.
  Vector ColVector(int64_t j) const;

  /// Sets row i from a vector.
  void SetRow(int64_t i, const Vector& v);

  /// Sum of all entries.
  double Sum() const;

  /// Trace (requires square).
  double Trace() const;

  /// Squared Frobenius norm.
  double FrobeniusNormSquared() const;

  /// L1 operator norm: the maximum absolute column sum. Equals the
  /// sensitivity of the query set defined by this matrix (Section 3.5).
  double MaxAbsColSum() const;

  /// Per-column sums of absolute values (the per-column sensitivity profile).
  Vector AbsColSums() const;

  /// Per-column plain sums.
  Vector ColSums() const;

  /// Maximum absolute difference against another matrix (testing helper).
  double MaxAbsDiff(const Matrix& other) const;

  /// Human-readable rendering for debugging/tests.
  std::string DebugString(int64_t max_rows = 8, int64_t max_cols = 8) const;

 private:
  // Validates the shape BEFORE the storage allocation sizes itself from it;
  // a negative dimension must trip the check, not a wrapped-around huge
  // allocation in the member-init list.
  static size_t CheckedSize(int64_t rows, int64_t cols) {
    HDMM_CHECK(rows >= 0 && cols >= 0);
    return static_cast<size_t>(rows) * static_cast<size_t>(cols);
  }

  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

/// C = A * B. Cache-blocked, register-tiled, parallelized over the shared
/// ThreadPool (see linalg/gemm.h for the kernels and *Into variants).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B without forming A^T.
Matrix MatMulTN(const Matrix& a, const Matrix& b);

/// C = A * B^T without forming B^T.
Matrix MatMulNT(const Matrix& a, const Matrix& b);

/// Gram matrix A^T A via the SYRK kernel: only the lower triangle is
/// computed and then mirrored, so the output is exactly symmetric and costs
/// about half a general product.
Matrix Gram(const Matrix& a);

/// y = A x.
Vector MatVec(const Matrix& a, const Vector& x);

/// y = A^T x without forming A^T.
Vector MatTVec(const Matrix& a, const Vector& x);

/// A + B.
Matrix MatAdd(const Matrix& a, const Matrix& b);

/// A - B.
Matrix MatSub(const Matrix& a, const Matrix& b);

/// alpha * A.
Matrix MatScale(const Matrix& a, double alpha);

/// Vertically stacks the given matrices (all must share a column count).
Matrix VStack(const std::vector<Matrix>& blocks);

}  // namespace hdmm

#endif  // HDMM_LINALG_MATRIX_H_
