// Free functions over the library's vector type. Vectors are plain
// std::vector<double>; all arithmetic lives here rather than on a wrapper
// class so that interop with callers stays frictionless.
#ifndef HDMM_LINALG_VECTOR_OPS_H_
#define HDMM_LINALG_VECTOR_OPS_H_

#include <cstdint>
#include <vector>

namespace hdmm {

/// The library-wide dense vector type.
using Vector = std::vector<double>;

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm2(const Vector& a);

/// Squared Euclidean norm.
double Norm2Squared(const Vector& a);

/// Max-absolute-entry norm.
double NormInf(const Vector& a);

/// Sum of entries.
double Sum(const Vector& a);

/// y += alpha * x.
void Axpy(double alpha, const Vector& x, Vector* y);

/// x *= alpha.
void Scale(double alpha, Vector* x);

/// Element-wise a + b.
Vector Add(const Vector& a, const Vector& b);

/// Element-wise a - b.
Vector Sub(const Vector& a, const Vector& b);

/// Vector of n zeros.
Vector ZerosVector(int64_t n);

/// Vector of n copies of value v.
Vector ConstantVector(int64_t n, double v);

}  // namespace hdmm

#endif  // HDMM_LINALG_VECTOR_OPS_H_
