#include "linalg/trace_estimator.h"

#include "common/check.h"
#include "common/thread_pool.h"

namespace hdmm {

double EstimateTraceInvProduct(const LinearOperator& x,
                               const LinearOperator& g, Rng* rng,
                               const TraceEstimatorOptions& options) {
  HDMM_CHECK(x.Rows() == x.Cols());
  HDMM_CHECK(g.Rows() == g.Cols());
  HDMM_CHECK(x.Rows() == g.Rows());
  const int64_t n = x.Rows();

  // Draw every probe up front from the caller's Rng, then fan the expensive
  // CG solves out over the shared pool. Keeping the draws serial makes the
  // estimate a deterministic function of (seed, num_samples) no matter how
  // many workers run the solves; per-sample results are summed in index
  // order below for the same reason.
  const int num_samples = options.num_samples;
  std::vector<Vector> probes;
  probes.reserve(static_cast<size_t>(num_samples));
  for (int s = 0; s < num_samples; ++s)
    probes.push_back(rng->RademacherVector(n));

  Vector per_sample(static_cast<size_t>(num_samples), 0.0);
  ComputePool().ParallelFor(
      0, num_samples, /*grain=*/1, [&](int64_t begin, int64_t end) {
        Vector gz;
        for (int64_t s = begin; s < end; ++s) {
          const Vector& z = probes[static_cast<size_t>(s)];
          g.Apply(z, &gz);                              // w = G z
          CgResult solve = CgSolve(x, gz, options.cg);  // y = X^{-1} w
          per_sample[static_cast<size_t>(s)] = Dot(z, solve.x);
        }
      });

  double acc = 0.0;
  for (double v : per_sample) acc += v;
  return acc / num_samples;
}

}  // namespace hdmm
