#include "linalg/trace_estimator.h"

#include "common/check.h"

namespace hdmm {

double EstimateTraceInvProduct(const LinearOperator& x,
                               const LinearOperator& g, Rng* rng,
                               const TraceEstimatorOptions& options) {
  HDMM_CHECK(x.Rows() == x.Cols());
  HDMM_CHECK(g.Rows() == g.Cols());
  HDMM_CHECK(x.Rows() == g.Rows());
  const int64_t n = x.Rows();

  double acc = 0.0;
  Vector gz;
  for (int s = 0; s < options.num_samples; ++s) {
    Vector z = rng->RademacherVector(n);
    g.Apply(z, &gz);                       // w = G z
    CgResult solve = CgSolve(x, gz, options.cg);  // y = X^{-1} w
    acc += Dot(z, solve.x);
  }
  return acc / options.num_samples;
}

}  // namespace hdmm
