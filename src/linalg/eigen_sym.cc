#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/gemm.h"

namespace hdmm {
namespace {

// Below this order the Householder pipeline's fixed costs (panel scratch, WY
// blocks) exceed the whole Jacobi run; cyclic Jacobi stays the tiny-n path.
constexpr int64_t kJacobiCutoff = 32;

// Reflectors aggregated per compact-WY block in the back-transformation.
constexpr int64_t kReflectorBlock = 32;

// Sorts eigenvalues ascending and permutes the eigenvector columns to match.
SymmetricEigen SortedResult(Vector evals, const Matrix& v) {
  const int64_t n = static_cast<int64_t>(evals.size());
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t l, int64_t r) {
    return evals[static_cast<size_t>(l)] < evals[static_cast<size_t>(r)];
  });
  SymmetricEigen out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = order[static_cast<size_t>(i)];
    out.eigenvalues[static_cast<size_t>(i)] = evals[static_cast<size_t>(src)];
    for (int64_t k = 0; k < n; ++k) out.eigenvectors(k, i) = v(k, src);
  }
  return out;
}

// Cyclic Jacobi: unconditionally convergent, O(n^2) rotations per sweep.
// The off-diagonal norm used for the convergence test is accumulated from the
// entries visited during the sweep itself (pre-rotation values), so no
// separate n^2 pass over the matrix is needed per sweep.
SymmetricEigen JacobiEigenSym(const Matrix& x, int max_sweeps, double tol) {
  const int64_t n = x.rows();
  Matrix a = x;
  Matrix v = Matrix::Identity(n);

  double base = 0.0;  // Frobenius scale used for the convergence threshold.
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) base += a(i, j) * a(i, j);
  base = std::sqrt(base);
  if (base == 0.0) base = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off2 = 0.0;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        off2 += apq * apq;
        if (std::fabs(apq) <= 1e-300) continue;
        double app = a(p, p), aqq = a(q, q);
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0.0)
                       ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                       : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = t * c;
        // Apply rotation J(p,q,theta) on both sides: A <- J^T A J.
        for (int64_t k = 0; k < n; ++k) {
          double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    if (std::sqrt(off2) <= tol * base) break;
  }

  Vector evals(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) evals[static_cast<size_t>(i)] = a(i, i);
  return SortedResult(std::move(evals), v);
}

// Householder reduction to tridiagonal form, in place on `a` (symmetric;
// only the lower triangle is referenced and updated). On exit d[i] = T(i,i),
// e[i] = T(i+1,i) for i < n-1 (e has length n, the last slot is a sentinel
// for the QL iteration), and for j <= n-3 the strictly-lower part of column j
// below the first subdiagonal together with tau[j] encodes the reflector
// H_j = I - tau_j v_j v_j^T acting on rows j+1..n-1 (v_j's leading 1 is
// implicit; its tail lives at a(j+2.., j)). Q = H_0 H_1 ... H_{n-3} then
// satisfies Q^T A Q = T.
void Tridiagonalize(Matrix* a_io, Vector* d, Vector* e, Vector* tau) {
  Matrix& a = *a_io;
  const int64_t n = a.rows();
  d->assign(static_cast<size_t>(n), 0.0);
  e->assign(static_cast<size_t>(n), 0.0);
  tau->assign(n > 2 ? static_cast<size_t>(n - 2) : 0, 0.0);
  Vector v(static_cast<size_t>(n)), p(static_cast<size_t>(n)),
      w(static_cast<size_t>(n));
  for (int64_t j = 0; j + 2 < n; ++j) {
    const int64_t m = n - j - 1;  // length of the column below the diagonal
    const int64_t off = j + 1;
    for (int64_t t = 0; t < m; ++t)
      v[static_cast<size_t>(t)] = a(off + t, j);
    const double alpha = v[0];
    double xnorm2 = 0.0;
    for (int64_t t = 1; t < m; ++t)
      xnorm2 += v[static_cast<size_t>(t)] * v[static_cast<size_t>(t)];
    if (xnorm2 == 0.0) {
      // Column already in tridiagonal form: H_j = I.
      (*e)[static_cast<size_t>(j)] = alpha;
      continue;
    }
    // Elementary reflector sending the column to (beta, 0, ..., 0)^T.
    const double norm = std::sqrt(alpha * alpha + xnorm2);
    const double beta = (alpha >= 0.0) ? -norm : norm;
    const double tj = (beta - alpha) / beta;
    const double scale = 1.0 / (alpha - beta);
    v[0] = 1.0;
    for (int64_t t = 1; t < m; ++t) v[static_cast<size_t>(t)] *= scale;
    (*e)[static_cast<size_t>(j)] = beta;
    (*tau)[static_cast<size_t>(j)] = tj;
    for (int64_t t = 1; t < m; ++t) a(off + t, j) = v[static_cast<size_t>(t)];
    // p = tau * A22 v using only the lower triangle of A22 = A(j+1.., j+1..):
    // each row contributes a dot (row part) and an axpy (mirrored part), both
    // contiguous.
    for (int64_t i = 0; i < m; ++i) p[static_cast<size_t>(i)] = 0.0;
    for (int64_t i = 0; i < m; ++i) {
      const double* row = a.Row(off + i) + off;
      const double vi = v[static_cast<size_t>(i)];
      double s = row[i] * vi;
      for (int64_t t = 0; t < i; ++t) {
        s += row[t] * v[static_cast<size_t>(t)];
        p[static_cast<size_t>(t)] += row[t] * vi;
      }
      p[static_cast<size_t>(i)] += s;
    }
    for (int64_t i = 0; i < m; ++i) p[static_cast<size_t>(i)] *= tj;
    // w = p - (tau/2)(p^T v) v, then the symmetric rank-2 update
    // A22 -= v w^T + w v^T (lower triangle only).
    double pv = 0.0;
    for (int64_t i = 0; i < m; ++i)
      pv += p[static_cast<size_t>(i)] * v[static_cast<size_t>(i)];
    const double half = 0.5 * tj * pv;
    for (int64_t i = 0; i < m; ++i)
      w[static_cast<size_t>(i)] =
          p[static_cast<size_t>(i)] - half * v[static_cast<size_t>(i)];
    for (int64_t i = 0; i < m; ++i) {
      double* row = a.Row(off + i) + off;
      const double vi = v[static_cast<size_t>(i)];
      const double wi = w[static_cast<size_t>(i)];
      for (int64_t t = 0; t <= i; ++t)
        row[t] -= vi * w[static_cast<size_t>(t)] + wi * v[static_cast<size_t>(t)];
    }
  }
  if (n >= 2) (*e)[static_cast<size_t>(n - 2)] = a(n - 1, n - 2);
  for (int64_t i = 0; i < n; ++i) (*d)[static_cast<size_t>(i)] = a(i, i);
}

// Implicit-shift QL on the tridiagonal (d, e); e[i] couples d[i] and d[i+1]
// and e[n-1] is a zero sentinel. If z is non-null the plane rotations are
// accumulated into its columns. Rotations are buffered per QL step and
// applied row-major in one pass over z: each row transforms independently,
// and within a row the buffered rotations MUST be applied in recorded order
// (consecutive pairs (i, i+1), (i-1, i) overlap, so the sequence does not
// commute). This turns the classic column-strided update into a streaming
// one without changing a single arithmetic op. Returns false if an eigenvalue
// fails to converge (practically unreachable; callers fall back to Jacobi).
bool TqlImplicit(Vector* d_io, Vector* e_io, Matrix* z) {
  Vector& d = *d_io;
  Vector& e = *e_io;
  const int64_t n = static_cast<int64_t>(d.size());
  if (n <= 1) return true;
  const double eps = std::numeric_limits<double>::epsilon();
  std::vector<double> cs(static_cast<size_t>(n)), sn(static_cast<size_t>(n));
  for (int64_t l = 0; l < n; ++l) {
    int iter = 0;
    int64_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::fabs(d[static_cast<size_t>(m)]) +
                          std::fabs(d[static_cast<size_t>(m + 1)]);
        if (std::fabs(e[static_cast<size_t>(m)]) <= eps * dd) break;
      }
      if (m != l) {
        if (iter++ == 50) return false;
        double g = (d[static_cast<size_t>(l + 1)] - d[static_cast<size_t>(l)]) /
                   (2.0 * e[static_cast<size_t>(l)]);
        double r = std::hypot(g, 1.0);
        g = d[static_cast<size_t>(m)] - d[static_cast<size_t>(l)] +
            e[static_cast<size_t>(l)] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        int64_t nrot = 0;
        int64_t i;
        for (i = m - 1; i >= l; --i) {
          double f = s * e[static_cast<size_t>(i)];
          const double b = c * e[static_cast<size_t>(i)];
          r = std::hypot(f, g);
          e[static_cast<size_t>(i + 1)] = r;
          if (r == 0.0) {
            d[static_cast<size_t>(i + 1)] -= p;
            e[static_cast<size_t>(m)] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<size_t>(i + 1)] - p;
          r = (d[static_cast<size_t>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<size_t>(i + 1)] = g + p;
          g = c * r - b;
          // Rotation on column pair (i, i+1); deferred for streaming apply.
          cs[static_cast<size_t>(nrot)] = c;
          sn[static_cast<size_t>(nrot)] = s;
          ++nrot;
        }
        if (z != nullptr && nrot > 0) {
          ComputePool().ParallelFor(
              0, z->rows(), /*grain=*/64, [&](int64_t r0, int64_t r1) {
                for (int64_t k = r0; k < r1; ++k) {
                  double* zr = z->Row(k);
                  for (int64_t idx = 0; idx < nrot; ++idx) {
                    const int64_t col = m - 1 - idx;
                    const double ci = cs[static_cast<size_t>(idx)];
                    const double si = sn[static_cast<size_t>(idx)];
                    const double f = zr[col + 1];
                    zr[col + 1] = si * zr[col] + ci * f;
                    zr[col] = ci * zr[col] - si * f;
                  }
                }
              });
        }
        if (r == 0.0 && i >= l) continue;
        d[static_cast<size_t>(l)] -= p;
        e[static_cast<size_t>(l)] = g;
        e[static_cast<size_t>(m)] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

// Back-transformation z := Q z with Q = H_0 H_1 ... H_{n-3} from
// Tridiagonalize. Reflectors are aggregated kReflectorBlock at a time into
// compact-WY form (Q_blk = I - V T V^T) so each block applies through two
// GEMM calls instead of one rank-1 update per reflector — one pass over z
// per block instead of per reflector.
void ApplyQ(const Matrix& a, const Vector& tau, Matrix* z) {
  const int64_t n = a.rows();
  const int64_t nref = static_cast<int64_t>(tau.size());
  if (nref <= 0) return;
  const int64_t ncols = z->cols();
  const int64_t nbmax = kReflectorBlock;
  std::vector<double> tmat(static_cast<size_t>(nbmax * nbmax));
  std::vector<double> vv(static_cast<size_t>(nbmax));
  // Blocks applied last-to-first so the total product is H_0 ... H_{nref-1}.
  for (int64_t kb = ((nref - 1) / nbmax) * nbmax; kb >= 0; kb -= nbmax) {
    const int64_t nb = std::min<int64_t>(nbmax, nref - kb);
    const int64_t h = n - kb - 1;  // rows kb+1 .. n-1
    // Materialize V (h x nb): column jl holds v_{kb+jl}, which starts (with
    // its implicit unit) at global row kb+1+jl.
    Matrix vpanel(h, nb);
    for (int64_t jl = 0; jl < nb; ++jl) {
      const int64_t j = kb + jl;
      vpanel(jl, jl) = 1.0;
      for (int64_t r = jl + 1; r < h; ++r) vpanel(r, jl) = a(kb + 1 + r, j);
    }
    // T (nb x nb upper triangular), dlarft-style forward columnwise build:
    // T(jl,jl) = tau_jl, T(0:jl, jl) = -tau_jl T(0:jl,0:jl) (V^T v_jl).
    std::fill(tmat.begin(), tmat.end(), 0.0);
    for (int64_t jl = 0; jl < nb; ++jl) {
      const double tj = tau[static_cast<size_t>(kb + jl)];
      if (tj == 0.0) continue;  // H = I: zero column keeps the product exact.
      for (int64_t c = 0; c < jl; ++c) vv[static_cast<size_t>(c)] = 0.0;
      for (int64_t r = jl; r < h; ++r) {
        const double* vrow = vpanel.Row(r);
        const double vr = vrow[jl];
        for (int64_t c = 0; c < jl; ++c)
          vv[static_cast<size_t>(c)] += vrow[c] * vr;
      }
      for (int64_t rr = 0; rr < jl; ++rr) {
        double s = 0.0;
        for (int64_t cc = rr; cc < jl; ++cc)
          s += tmat[static_cast<size_t>(rr * nbmax + cc)] *
               vv[static_cast<size_t>(cc)];
        tmat[static_cast<size_t>(rr * nbmax + jl)] = -tj * s;
      }
      tmat[static_cast<size_t>(jl * nbmax + jl)] = tj;
    }
    // z[kb+1.., :] -= V (T (V^T z[kb+1.., :])).
    Matrix work(nb, ncols);
    GemmViewUpdate(nb, ncols, h, 1.0, vpanel.data(), nb, true, z->Row(kb + 1),
                   ncols, false, work.data(), ncols, /*lower_only=*/false);
    // work := T work, exploiting T upper triangular; ascending rows only read
    // not-yet-overwritten rows, so the product is computed in place.
    for (int64_t i = 0; i < nb; ++i) {
      double* wrow = work.Row(i);
      const double tii = tmat[static_cast<size_t>(i * nbmax + i)];
      for (int64_t j = 0; j < ncols; ++j) wrow[j] *= tii;
      for (int64_t t = i + 1; t < nb; ++t) {
        const double coef = tmat[static_cast<size_t>(i * nbmax + t)];
        if (coef == 0.0) continue;
        const double* xrow = work.Row(t);
        for (int64_t j = 0; j < ncols; ++j) wrow[j] += coef * xrow[j];
      }
    }
    GemmViewUpdate(h, ncols, nb, -1.0, vpanel.data(), nb, false, work.data(),
                   ncols, false, z->Row(kb + 1), ncols, /*lower_only=*/false);
  }
}

}  // namespace

SymmetricEigen EigenSym(const Matrix& x, int max_sweeps, double tol) {
  HDMM_CHECK(x.rows() == x.cols());
  const int64_t n = x.rows();
  if (n < kJacobiCutoff) return JacobiEigenSym(x, max_sweeps, tol);

  Matrix a = x;
  Vector d, e, tau;
  Tridiagonalize(&a, &d, &e, &tau);
  Matrix z = Matrix::Identity(n);
  if (!TqlImplicit(&d, &e, &z)) {
    // Practically unreachable non-convergence: Jacobi always converges.
    return JacobiEigenSym(x, max_sweeps, tol);
  }
  ApplyQ(a, tau, &z);
  return SortedResult(std::move(d), z);
}

Vector EigenvaluesSym(const Matrix& x) {
  HDMM_CHECK(x.rows() == x.cols());
  const int64_t n = x.rows();
  if (n < kJacobiCutoff) return EigenSym(x).eigenvalues;
  Matrix a = x;
  Vector d, e, tau;
  Tridiagonalize(&a, &d, &e, &tau);
  if (!TqlImplicit(&d, &e, nullptr)) return JacobiEigenSym(x, 64, 1e-12).eigenvalues;
  std::sort(d.begin(), d.end());
  return d;
}

}  // namespace hdmm
