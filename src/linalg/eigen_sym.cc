#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hdmm {

SymmetricEigen EigenSym(const Matrix& x, int max_sweeps, double tol) {
  HDMM_CHECK(x.rows() == x.cols());
  const int64_t n = x.rows();
  Matrix a = x;
  Matrix v = Matrix::Identity(n);

  double base = 0.0;  // Frobenius scale used for the convergence threshold.
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j) base += a(i, j) * a(i, j);
  base = std::sqrt(base);
  if (base == 0.0) base = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t i = 0; i < n; ++i)
      for (int64_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= tol * base) break;

    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        double app = a(p, p), aqq = a(q, q);
        double tau = (aqq - app) / (2.0 * apq);
        double t = (tau >= 0.0)
                       ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                       : 1.0 / (tau - std::sqrt(1.0 + tau * tau));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = t * c;
        // Apply rotation J(p,q,theta) on both sides: A <- J^T A J.
        for (int64_t k = 0; k < n; ++k) {
          double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort ascending.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Vector evals(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) evals[static_cast<size_t>(i)] = a(i, i);
  std::sort(order.begin(), order.end(), [&](int64_t l, int64_t r) {
    return evals[static_cast<size_t>(l)] < evals[static_cast<size_t>(r)];
  });

  SymmetricEigen out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t src = order[static_cast<size_t>(i)];
    out.eigenvalues[static_cast<size_t>(i)] = evals[static_cast<size_t>(src)];
    for (int64_t k = 0; k < n; ++k) out.eigenvectors(k, i) = v(k, src);
  }
  return out;
}

}  // namespace hdmm
