// Moore-Penrose pseudo-inverses. The RECONSTRUCT step of the mechanism
// (Table 1) and the error metric (Definition 7) are defined through A^+.
#ifndef HDMM_LINALG_PINV_H_
#define HDMM_LINALG_PINV_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Pseudo-inverse of a symmetric positive semi-definite matrix via
/// eigendecomposition. Eigenvalues below rcond * max_eigenvalue are treated
/// as zero.
Matrix PsdPseudoInverse(const Matrix& x, double rcond = 1e-12);

/// Pseudo-inverse of a general matrix. Uses A^+ = (A^T A)^+ A^T when
/// rows >= cols and A^+ = A^T (A A^T)^+ otherwise.
Matrix PseudoInverse(const Matrix& a, double rcond = 1e-12);

/// tr[(A^T A)^+ G] with PSD pseudo-inverse semantics; the core quantity in
/// the expected-error formula ||W A^+||_F^2 = tr[(A^T A)^+ (W^T W)]
/// (Equation 3). Falls back from Cholesky to the eigendecomposition path
/// when A^T A is singular.
double TracePinvGram(const Matrix& gram_a, const Matrix& gram_w);

/// Precomputed form of TracePinvGram for a fixed strategy Gram: the inverse
/// (or PSD pseudo-inverse, when singular) is materialized once, and each
/// Trace against a workload Gram is the symmetric elementwise dot
/// tr[(A^T A)^+ G] = sum_ij (A^T A)^+_ij G_ij — no factorization, no solve,
/// and no allocation per call. This is what lets strategy error evaluation
/// run allocation-free over repeated workloads (the optimizer's restart
/// grid evaluates the same factor Grams against every candidate).
class PinvGramTracer {
 public:
  explicit PinvGramTracer(const Matrix& gram_a);
  double Trace(const Matrix& gram_w) const;
  int64_t rows() const { return inv_.rows(); }

 private:
  Matrix inv_;
};

}  // namespace hdmm

#endif  // HDMM_LINALG_PINV_H_
