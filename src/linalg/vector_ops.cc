#include "linalg/vector_ops.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

double Dot(const Vector& a, const Vector& b) {
  HDMM_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm2(const Vector& a) { return std::sqrt(Norm2Squared(a)); }

double Norm2Squared(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += v * v;
  return s;
}

double NormInf(const Vector& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::fabs(v));
  return m;
}

double Sum(const Vector& a) {
  double s = 0.0;
  for (double v : a) s += v;
  return s;
}

void Axpy(double alpha, const Vector& x, Vector* y) {
  HDMM_CHECK(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, Vector* x) {
  for (double& v : *x) v *= alpha;
}

Vector Add(const Vector& a, const Vector& b) {
  HDMM_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector Sub(const Vector& a, const Vector& b) {
  HDMM_CHECK(a.size() == b.size());
  Vector out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector ZerosVector(int64_t n) { return Vector(static_cast<size_t>(n), 0.0); }

Vector ConstantVector(int64_t n, double v) {
  return Vector(static_cast<size_t>(n), v);
}

}  // namespace hdmm
