// Cache-blocked, register-tiled GEMM/SYRK kernels: the compute substrate
// under MatMul/MatMulTN/MatMulNT/Gram. Operands are packed into contiguous
// micro-panels (BLIS-style MC x KC x NC blocking) so the micro-kernel streams
// unit-stride data the compiler can keep in SIMD registers; the N/T variants
// differ only in how the packing routines gather, not in the kernel itself.
//
// The micro-kernel is selected once at runtime from the host CPU (cpuid):
// a 8x16 zmm FMA kernel on AVX-512, the 6x8 ymm FMA kernel on AVX2, and a
// compiler-vectorized portable kernel otherwise, each with MC/KC/NC blocking
// re-derived from the detected cache hierarchy. HDMM_ISA=portable|avx2|avx512
// forces a lower tier (requests above the host's capability fall back).
#ifndef HDMM_LINALG_GEMM_H_
#define HDMM_LINALG_GEMM_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Whether a kernel fans out over the shared ThreadPool or stays on the
/// calling thread (used by benchmarks to isolate blocking from threading).
enum class GemmParallelism { kSerial, kPooled };

/// Instruction-set tier of the GEMM micro-kernel.
enum class GemmIsa { kPortable, kAvx2, kAvx512 };

/// Register-tile and cache-blocking geometry of the active kernel: the
/// micro-tile is mr x nr, an A panel is mc x kc (L2-resident), a B panel is
/// kc x nc (L3), one B strip (kc x nr) stays L1-resident.
struct GemmBlocking {
  int mr = 0;
  int nr = 0;
  int64_t mc = 0;
  int64_t kc = 0;
  int64_t nc = 0;
};

/// The ISA tier the dispatcher selected (after the HDMM_ISA override).
GemmIsa ActiveGemmIsa();

/// "avx512" | "avx2" | "portable" — for bench headers and logs.
const char* GemmIsaName();

/// The active kernel's blocking constants (bench headers record these so
/// numbers are comparable across machines).
GemmBlocking ActiveGemmBlocking();

/// Forces the kernel tier; returns false (and leaves the selection alone)
/// when the host cannot run `isa`. Bench/test knob — not synchronized
/// against concurrent GEMM calls; quiesce kernels before switching.
bool SetGemmIsa(GemmIsa isa);

/// c = a * b. `c` is resized and overwritten.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c,
                GemmParallelism par = GemmParallelism::kPooled);

/// c = a^T * b without forming a^T.
void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par = GemmParallelism::kPooled);

/// c = a * b^T without forming b^T.
void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par = GemmParallelism::kPooled);

/// out = a^T a (SYRK): only the lower triangle is computed, then mirrored, so
/// the result is exactly symmetric and costs about half a general product.
void GramInto(const Matrix& a, Matrix* out,
              GemmParallelism par = GemmParallelism::kPooled);

/// out = a a^T (outer SYRK), same triangle-and-mirror scheme as GramInto.
void GramOuterInto(const Matrix& a, Matrix* out,
                   GemmParallelism par = GemmParallelism::kPooled);

/// Gram matrix a a^T returned by value (see GramOuterInto).
Matrix GramOuter(const Matrix& a);

/// View-level GEMM for the blocked factorization layer: accumulates
///   C += alpha * op(A) * op(B)
/// into the m x n row-major view (c, ldc), where op(A) is the m x k view
/// (a, lda) read transposed when a_trans is set (likewise for B). Unlike the
/// *Into kernels above the output is NOT resized or zeroed — this is the
/// primitive behind trailing-matrix updates (Cholesky SYRK panels), TRSM
/// off-diagonal updates, and blocked WY reflector application, where C is a
/// submatrix of a larger factor. `lower_only` skips micro-tiles strictly
/// above the view's own diagonal (SYRK-style). The operands may live in the
/// same allocation as C (the factorization callers update one panel of a
/// matrix from another), but the C view's address region must not overlap
/// either operand's region — the driver writes C while operand panels are
/// only guaranteed to have been packed before the tiles they feed.
void GemmViewUpdate(int64_t m, int64_t n, int64_t k, double alpha,
                    const double* a, int64_t lda, bool a_trans,
                    const double* b, int64_t ldb, bool b_trans, double* c,
                    int64_t ldc, bool lower_only,
                    GemmParallelism par = GemmParallelism::kPooled);

}  // namespace hdmm

#endif  // HDMM_LINALG_GEMM_H_
