// Cache-blocked, register-tiled GEMM/SYRK kernels: the compute substrate
// under MatMul/MatMulTN/MatMulNT/Gram. Operands are packed into contiguous
// micro-panels (BLIS-style MC x KC x NC blocking) so the micro-kernel streams
// unit-stride data the compiler can keep in SIMD registers; the N/T variants
// differ only in how the packing routines gather, not in the kernel itself.
#ifndef HDMM_LINALG_GEMM_H_
#define HDMM_LINALG_GEMM_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Whether a kernel fans out over the shared ThreadPool or stays on the
/// calling thread (used by benchmarks to isolate blocking from threading).
enum class GemmParallelism { kSerial, kPooled };

/// c = a * b. `c` is resized and overwritten.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c,
                GemmParallelism par = GemmParallelism::kPooled);

/// c = a^T * b without forming a^T.
void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par = GemmParallelism::kPooled);

/// c = a * b^T without forming b^T.
void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par = GemmParallelism::kPooled);

/// out = a^T a (SYRK): only the lower triangle is computed, then mirrored, so
/// the result is exactly symmetric and costs about half a general product.
void GramInto(const Matrix& a, Matrix* out,
              GemmParallelism par = GemmParallelism::kPooled);

/// out = a a^T (outer SYRK), same triangle-and-mirror scheme as GramInto.
void GramOuterInto(const Matrix& a, Matrix* out,
                   GemmParallelism par = GemmParallelism::kPooled);

/// Gram matrix a a^T returned by value (see GramOuterInto).
Matrix GramOuter(const Matrix& a);

}  // namespace hdmm

#endif  // HDMM_LINALG_GEMM_H_
