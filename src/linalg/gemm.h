// Cache-blocked, register-tiled GEMM/SYRK kernels: the compute substrate
// under MatMul/MatMulTN/MatMulNT/Gram. Operands are packed into contiguous
// micro-panels (BLIS-style MC x KC x NC blocking) so the micro-kernel streams
// unit-stride data the compiler can keep in SIMD registers; the N/T variants
// differ only in how the packing routines gather, not in the kernel itself.
#ifndef HDMM_LINALG_GEMM_H_
#define HDMM_LINALG_GEMM_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Whether a kernel fans out over the shared ThreadPool or stays on the
/// calling thread (used by benchmarks to isolate blocking from threading).
enum class GemmParallelism { kSerial, kPooled };

/// c = a * b. `c` is resized and overwritten.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* c,
                GemmParallelism par = GemmParallelism::kPooled);

/// c = a^T * b without forming a^T.
void MatMulTNInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par = GemmParallelism::kPooled);

/// c = a * b^T without forming b^T.
void MatMulNTInto(const Matrix& a, const Matrix& b, Matrix* c,
                  GemmParallelism par = GemmParallelism::kPooled);

/// out = a^T a (SYRK): only the lower triangle is computed, then mirrored, so
/// the result is exactly symmetric and costs about half a general product.
void GramInto(const Matrix& a, Matrix* out,
              GemmParallelism par = GemmParallelism::kPooled);

/// out = a a^T (outer SYRK), same triangle-and-mirror scheme as GramInto.
void GramOuterInto(const Matrix& a, Matrix* out,
                   GemmParallelism par = GemmParallelism::kPooled);

/// Gram matrix a a^T returned by value (see GramOuterInto).
Matrix GramOuter(const Matrix& a);

/// View-level GEMM for the blocked factorization layer: accumulates
///   C += alpha * op(A) * op(B)
/// into the m x n row-major view (c, ldc), where op(A) is the m x k view
/// (a, lda) read transposed when a_trans is set (likewise for B). Unlike the
/// *Into kernels above the output is NOT resized or zeroed — this is the
/// primitive behind trailing-matrix updates (Cholesky SYRK panels), TRSM
/// off-diagonal updates, and blocked WY reflector application, where C is a
/// submatrix of a larger factor. `lower_only` skips micro-tiles strictly
/// above the view's own diagonal (SYRK-style). The operands may live in the
/// same allocation as C (the factorization callers update one panel of a
/// matrix from another), but the C view's address region must not overlap
/// either operand's region — the driver writes C while operand panels are
/// only guaranteed to have been packed before the tiles they feed.
void GemmViewUpdate(int64_t m, int64_t n, int64_t k, double alpha,
                    const double* a, int64_t lda, bool a_trans,
                    const double* b, int64_t ldb, bool b_trans, double* c,
                    int64_t ldc, bool lower_only,
                    GemmParallelism par = GemmParallelism::kPooled);

}  // namespace hdmm

#endif  // HDMM_LINALG_GEMM_H_
