#include "linalg/pinv.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"

namespace hdmm {

Matrix PsdPseudoInverse(const Matrix& x, double rcond) {
  SymmetricEigen eig = EigenSym(x);
  const int64_t n = x.rows();
  double max_ev = 0.0;
  for (double v : eig.eigenvalues) max_ev = std::max(max_ev, v);
  double cut = rcond * std::max(max_ev, 1e-300);
  // X^+ = V diag(1/lambda_i for lambda_i > cut else 0) V^T.
  Matrix scaled = eig.eigenvectors;  // columns scaled by 1/lambda.
  for (int64_t j = 0; j < n; ++j) {
    double ev = eig.eigenvalues[static_cast<size_t>(j)];
    double inv = (ev > cut) ? 1.0 / ev : 0.0;
    for (int64_t i = 0; i < n; ++i) scaled(i, j) *= inv;
  }
  return MatMulNT(scaled, eig.eigenvectors);
}

Matrix PseudoInverse(const Matrix& a, double rcond) {
  if (a.rows() >= a.cols()) {
    Matrix g;
    GramInto(a, &g);
    Matrix gp = PsdPseudoInverse(g, rcond);
    // A^+ = (A^T A)^+ A^T.
    return MatMulNT(gp, a);
  }
  Matrix g = GramOuter(a);
  Matrix gp = PsdPseudoInverse(g, rcond);
  // A^+ = A^T (A A^T)^+.
  return MatMulTN(a, gp);
}

double TracePinvGram(const Matrix& gram_a, const Matrix& gram_w) {
  HDMM_CHECK(gram_a.rows() == gram_w.rows());
  Matrix l;
  if (CholeskyFactor(gram_a, &l)) {
    double tr = 0.0;
    for (int64_t j = 0; j < gram_w.cols(); ++j) {
      Vector col = gram_w.ColVector(j);
      Vector sol = CholeskySolve(l, col);
      tr += sol[static_cast<size_t>(j)];
    }
    return tr;
  }
  Matrix pinv = PsdPseudoInverse(gram_a);
  double tr = 0.0;
  for (int64_t i = 0; i < pinv.rows(); ++i)
    for (int64_t j = 0; j < pinv.cols(); ++j) tr += pinv(i, j) * gram_w(j, i);
  return tr;
}

}  // namespace hdmm
