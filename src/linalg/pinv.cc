#include "linalg/pinv.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"

namespace hdmm {

Matrix PsdPseudoInverse(const Matrix& x, double rcond) {
  SymmetricEigen eig = EigenSym(x);
  const int64_t n = x.rows();
  double max_ev = 0.0;
  for (double v : eig.eigenvalues) max_ev = std::max(max_ev, v);
  double cut = rcond * std::max(max_ev, 1e-300);
  // X^+ = V diag(1/lambda_i for lambda_i > cut else 0) V^T. Scaling the
  // retained columns by lambda^{-1/2} in place turns this into an outer SYRK
  // of the scaled eigenvector matrix: no second copy of V, half the flops of
  // a general product, and an exactly symmetric result.
  Matrix& v = eig.eigenvectors;
  for (int64_t j = 0; j < n; ++j) {
    double ev = eig.eigenvalues[static_cast<size_t>(j)];
    double inv_sqrt = (ev > cut) ? 1.0 / std::sqrt(ev) : 0.0;
    for (int64_t i = 0; i < n; ++i) v(i, j) *= inv_sqrt;
  }
  return GramOuter(v);
}

Matrix PseudoInverse(const Matrix& a, double rcond) {
  if (a.rows() >= a.cols()) {
    Matrix g;
    GramInto(a, &g);
    Matrix gp = PsdPseudoInverse(g, rcond);
    // A^+ = (A^T A)^+ A^T.
    return MatMulNT(gp, a);
  }
  Matrix g = GramOuter(a);
  Matrix gp = PsdPseudoInverse(g, rcond);
  // A^+ = A^T (A A^T)^+.
  return MatMulTN(a, gp);
}

double TracePinvGram(const Matrix& gram_a, const Matrix& gram_w) {
  HDMM_CHECK(gram_a.rows() == gram_w.rows());
  Matrix l;
  if (CholeskyFactor(gram_a, &l)) {
    // One blocked multi-RHS solve against all of G's columns at once, then
    // read the diagonal — no per-column Vector extraction.
    Matrix z;
    CholeskySolveMatrixInto(l, gram_w, &z);
    return z.Trace();
  }
  // Singular Gram: pseudo-inverse semantics. tr[P G] = sum_i P(i,:) . G(:,i),
  // and both operands are symmetric, so the columns of G can be read as rows
  // (contiguous in the row-major layout).
  Matrix pinv = PsdPseudoInverse(gram_a);
  double tr = 0.0;
  for (int64_t i = 0; i < pinv.rows(); ++i) {
    const double* prow = pinv.Row(i);
    const double* grow = gram_w.Row(i);
    double s = 0.0;
    for (int64_t j = 0; j < pinv.cols(); ++j) s += prow[j] * grow[j];
    tr += s;
  }
  return tr;
}

PinvGramTracer::PinvGramTracer(const Matrix& gram_a) {
  HDMM_CHECK(gram_a.rows() == gram_a.cols());
  Matrix l;
  if (CholeskyFactor(gram_a, &l)) {
    CholeskySolveMatrixInto(l, Matrix::Identity(gram_a.rows()), &inv_);
  } else {
    inv_ = PsdPseudoInverse(gram_a);
  }
}

double PinvGramTracer::Trace(const Matrix& gram_w) const {
  HDMM_CHECK(gram_w.rows() == inv_.rows() && gram_w.cols() == inv_.cols());
  // Both operands are symmetric, so the trace of the product is the
  // elementwise dot of the row-major storage — one linear pass.
  const double* a = inv_.data();
  const double* b = gram_w.data();
  const int64_t n = inv_.rows() * inv_.cols();
  double tr = 0.0;
  for (int64_t i = 0; i < n; ++i) tr += a[i] * b[i];
  return tr;
}

}  // namespace hdmm
