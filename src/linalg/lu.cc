#include "linalg/lu.h"

#include <cmath>

namespace hdmm {

LuFactorization::LuFactorization(const Matrix& a) : lu_(a), ok_(true) {
  HDMM_CHECK(a.rows() == a.cols());
  const int64_t n = a.rows();
  perm_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm_[static_cast<size_t>(i)] = i;
  for (int64_t k = 0; k < n; ++k) {
    // Partial pivot.
    int64_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (int64_t i = k + 1; i < n; ++i) {
      double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-300) {
      ok_ = false;
      return;
    }
    if (piv != k) {
      for (int64_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[static_cast<size_t>(k)], perm_[static_cast<size_t>(piv)]);
    }
    for (int64_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (int64_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
}

Vector LuFactorization::Solve(const Vector& b) const {
  HDMM_CHECK(ok_);
  const int64_t n = lu_.rows();
  Vector y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    y[static_cast<size_t>(i)] = b[static_cast<size_t>(perm_[static_cast<size_t>(i)])];
  // Forward: L y = P b (unit diagonal).
  for (int64_t i = 0; i < n; ++i) {
    double s = y[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) s -= lu_(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = s;
  }
  // Backward: U x = y.
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = y[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) s -= lu_(i, k) * y[static_cast<size_t>(k)];
    y[static_cast<size_t>(i)] = s / lu_(i, i);
  }
  return y;
}

Vector LuFactorization::SolveTranspose(const Vector& b) const {
  HDMM_CHECK(ok_);
  const int64_t n = lu_.rows();
  // A^T x = b  =>  (P A)^T (P^{-T} ... ) — work through U^T L^T P.
  // A = P^{-1} L U, so A^T = U^T L^T P^{-T}. Solve U^T z = b, L^T w = z,
  // then x = P^T w (i.e., x[perm[i]] = w[i]).
  Vector z = b;
  for (int64_t i = 0; i < n; ++i) {  // U^T lower-triangular solve.
    double s = z[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) s -= lu_(k, i) * z[static_cast<size_t>(k)];
    z[static_cast<size_t>(i)] = s / lu_(i, i);
  }
  for (int64_t i = n - 1; i >= 0; --i) {  // L^T upper-triangular solve.
    double s = z[static_cast<size_t>(i)];
    for (int64_t k = i + 1; k < n; ++k) s -= lu_(k, i) * z[static_cast<size_t>(k)];
    z[static_cast<size_t>(i)] = s;  // unit diagonal
  }
  Vector x(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i)
    x[static_cast<size_t>(perm_[static_cast<size_t>(i)])] = z[static_cast<size_t>(i)];
  return x;
}

Matrix LuFactorization::SolveMatrix(const Matrix& b) const {
  HDMM_CHECK(ok_);
  Matrix out(b.rows(), b.cols());
  for (int64_t j = 0; j < b.cols(); ++j) {
    Vector sol = Solve(b.ColVector(j));
    for (int64_t i = 0; i < b.rows(); ++i) out(i, j) = sol[static_cast<size_t>(i)];
  }
  return out;
}

double LuFactorization::Determinant() const {
  HDMM_CHECK(ok_);
  const int64_t n = lu_.rows();
  double det = 1.0;
  for (int64_t i = 0; i < n; ++i) det *= lu_(i, i);
  // Permutation sign = parity of the cycle decomposition of perm_.
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < n; ++i) {
    if (seen[static_cast<size_t>(i)]) continue;
    int64_t len = 0;
    int64_t j = i;
    while (!seen[static_cast<size_t>(j)]) {
      seen[static_cast<size_t>(j)] = true;
      j = perm_[static_cast<size_t>(j)];
      ++len;
    }
    if (len % 2 == 0) det = -det;
  }
  return det;
}

Matrix Inverse(const Matrix& a) {
  LuFactorization lu(a);
  HDMM_CHECK_MSG(lu.ok(), "Inverse: singular matrix");
  return lu.SolveMatrix(Matrix::Identity(a.rows()));
}

Vector UpperTriangularSolve(const Matrix& u, const Vector& b) {
  HDMM_CHECK(u.rows() == u.cols());
  const int64_t n = u.rows();
  Vector x = b;
  for (int64_t i = n - 1; i >= 0; --i) {
    double s = x[static_cast<size_t>(i)];
    const double* row = u.Row(i);
    for (int64_t k = i + 1; k < n; ++k) s -= row[k] * x[static_cast<size_t>(k)];
    HDMM_CHECK_MSG(std::fabs(row[i]) > 1e-300, "singular triangular system");
    x[static_cast<size_t>(i)] = s / row[i];
  }
  return x;
}

Vector UpperTriangularSolveTranspose(const Matrix& u, const Vector& b) {
  HDMM_CHECK(u.rows() == u.cols());
  const int64_t n = u.rows();
  Vector x = b;
  for (int64_t i = 0; i < n; ++i) {
    double s = x[static_cast<size_t>(i)];
    for (int64_t k = 0; k < i; ++k) s -= u(k, i) * x[static_cast<size_t>(k)];
    HDMM_CHECK_MSG(std::fabs(u(i, i)) > 1e-300, "singular triangular system");
    x[static_cast<size_t>(i)] = s / u(i, i);
  }
  return x;
}

}  // namespace hdmm
