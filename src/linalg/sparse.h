// Compressed sparse row (CSR) matrices. Hierarchical, wavelet, and partition
// strategies are extremely sparse (O(n log n) non-zeros for n x n shapes);
// the CSR path makes their measurement and LSMR inference scale past the
// dense representation.
#ifndef HDMM_LINALG_SPARSE_H_
#define HDMM_LINALG_SPARSE_H_

#include <cstdint>
#include <vector>

#include "linalg/linear_operator.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Immutable CSR sparse matrix of doubles.
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_{0} {}

  /// Builds from triplets (duplicates are summed).
  static SparseMatrix FromTriplets(
      int64_t rows, int64_t cols,
      std::vector<std::tuple<int64_t, int64_t, double>> triplets);

  /// Converts a dense matrix, dropping entries with |v| <= tolerance.
  static SparseMatrix FromDense(const Matrix& dense, double tolerance = 0.0);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t NumNonZeros() const { return static_cast<int64_t>(values_.size()); }

  /// y = A x.
  Vector Apply(const Vector& x) const;

  /// y = A^T x.
  Vector ApplyTranspose(const Vector& x) const;

  /// Dense expansion (tests / small matrices).
  Matrix ToDense() const;

  /// L1 operator norm (max abs column sum) = sensitivity.
  double MaxAbsColSum() const;

  /// Fraction of entries stored, for diagnostics.
  double Density() const {
    int64_t cells = rows_ * cols_;
    return cells == 0 ? 0.0 : static_cast<double>(NumNonZeros()) / cells;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;
  std::vector<int64_t> col_idx_;
  std::vector<double> values_;
};

/// LinearOperator adapter for CSR matrices.
class SparseOperator : public LinearOperator {
 public:
  using LinearOperator::Apply;
  using LinearOperator::ApplyTranspose;
  explicit SparseOperator(SparseMatrix m) : m_(std::move(m)) {}
  int64_t Rows() const override { return m_.rows(); }
  int64_t Cols() const override { return m_.cols(); }
  void Apply(const Vector& x, Vector* y) const override { *y = m_.Apply(x); }
  void ApplyTranspose(const Vector& x, Vector* y) const override {
    *y = m_.ApplyTranspose(x);
  }
  const SparseMatrix& matrix() const { return m_; }

 private:
  SparseMatrix m_;
};

}  // namespace hdmm

#endif  // HDMM_LINALG_SPARSE_H_
