// Cholesky factorization and SPD solves. Workhorse for the closed-form error
// computation tr[(A^T A)^{-1} (W^T W)] (Definition 7 / Equation 3).
//
// The factorization is right-looking and blocked: a small diagonal panel is
// factored with the scalar algorithm, the panel below it is finished with a
// per-row triangular solve, and the trailing matrix is updated with a SYRK
// rank-kPanel GEMM through the blocked substrate in linalg/gemm.h, so almost
// all of the n^3/3 flops run at GEMM speed. Solves against many right-hand
// sides are likewise blocked (panel-at-a-time, vectorized across the RHS
// columns) instead of extracting one column Vector at a time.
#ifndef HDMM_LINALG_CHOLESKY_H_
#define HDMM_LINALG_CHOLESKY_H_

#include "linalg/gemm.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Computes the lower-triangular Cholesky factor L with X = L L^T.
/// Returns false if X is not (numerically) positive definite.
bool CholeskyFactor(const Matrix& x, Matrix* l);

/// Solves L z = b in place (forward substitution, L lower triangular).
void ForwardSubstitute(const Matrix& l, Vector* b);

/// Solves L^T z = b in place (backward substitution against L^T).
void BackwardSubstituteTranspose(const Matrix& l, Vector* b);

/// Solves L Y = B in place over all columns of B at once (blocked forward
/// substitution: GEMM panel updates plus a vectorized diagonal-block solve).
void ForwardSubstituteMatrix(const Matrix& l, Matrix* b);

/// Solves L^T Y = B in place over all columns of B at once.
void BackwardSubstituteTransposeMatrix(const Matrix& l, Matrix* b);

/// Solves X y = b for SPD X given its Cholesky factor L.
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// Solves X Y = B for SPD X given its Cholesky factor L; `out` is resized and
/// overwritten. All right-hand sides are solved together through the blocked
/// multi-RHS substitutions (no per-column Vector copies).
void CholeskySolveMatrixInto(const Matrix& l, const Matrix& b, Matrix* out);

/// Solves X Y = B for SPD X given its Cholesky factor L (value-returning
/// wrapper over CholeskySolveMatrixInto).
Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b);

/// Transposed-RHS solve: computes Y = B X^{-1} (equivalently, solves
/// X Y^T = B^T) for SPD X = L L^T, where each ROW of the row-major B is one
/// right-hand side. Rows are solved independently (forward then backward
/// substitution against L), so nothing is ever transposed — this replaces
/// the two quadratically-sized Transposed() copies the p-Identity gradient
/// used to materialize around CholeskySolveMatrixInto. Supports out == &b
/// (in-place); with kSerial the call is allocation-free.
void CholeskySolveRowsInto(const Matrix& l, const Matrix& b, Matrix* out,
                           GemmParallelism par = GemmParallelism::kPooled);

/// Inverse of an SPD matrix via Cholesky. Dies if not SPD.
Matrix SpdInverse(const Matrix& x);

/// tr[X^{-1} G] for SPD X. Factors X once and reuses the factorization.
/// Dies if X is not SPD.
double TraceSolveSpd(const Matrix& x, const Matrix& g);

}  // namespace hdmm

#endif  // HDMM_LINALG_CHOLESKY_H_
