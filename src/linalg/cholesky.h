// Cholesky factorization and SPD solves. Workhorse for the closed-form error
// computation tr[(A^T A)^{-1} (W^T W)] (Definition 7 / Equation 3).
#ifndef HDMM_LINALG_CHOLESKY_H_
#define HDMM_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Computes the lower-triangular Cholesky factor L with X = L L^T.
/// Returns false if X is not (numerically) positive definite.
bool CholeskyFactor(const Matrix& x, Matrix* l);

/// Solves L z = b in place (forward substitution, L lower triangular).
void ForwardSubstitute(const Matrix& l, Vector* b);

/// Solves L^T z = b in place (backward substitution against L^T).
void BackwardSubstituteTranspose(const Matrix& l, Vector* b);

/// Solves X y = b for SPD X given its Cholesky factor L.
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// Solves X Y = B column-by-column for SPD X given its Cholesky factor L.
Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b);

/// Inverse of an SPD matrix via Cholesky. Dies if not SPD.
Matrix SpdInverse(const Matrix& x);

/// tr[X^{-1} G] for SPD X. Factors X once and reuses the factorization.
/// Dies if X is not SPD.
double TraceSolveSpd(const Matrix& x, const Matrix& g);

}  // namespace hdmm

#endif  // HDMM_LINALG_CHOLESKY_H_
