#include "linalg/cg.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

CgResult CgSolve(const LinearOperator& a, const Vector& b,
                 const CgOptions& options) {
  HDMM_CHECK(a.Rows() == a.Cols());
  HDMM_CHECK(static_cast<int64_t>(b.size()) == a.Rows());

  CgResult result;
  result.x.assign(b.size(), 0.0);
  Vector r = b;
  Vector p = r;
  double rs = Norm2Squared(r);
  const double b_norm = std::sqrt(Norm2Squared(b));
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  Vector ap;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    a.Apply(p, &ap);
    double pap = Dot(p, ap);
    if (pap <= 0.0) break;  // Not SPD (or breakdown); return best iterate.
    double alpha = rs / pap;
    Axpy(alpha, p, &result.x);
    Axpy(-alpha, ap, &r);
    double rs_new = Norm2Squared(r);
    result.residual_norm = std::sqrt(rs_new);
    if (result.residual_norm <= options.rtol * b_norm) {
      result.converged = true;
      break;
    }
    double beta = rs_new / rs;
    for (size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;
  }
  return result;
}

}  // namespace hdmm
