// LU factorization with partial pivoting for general square linear systems
// (used by the marginals algebra and several baselines).
#ifndef HDMM_LINALG_LU_H_
#define HDMM_LINALG_LU_H_

#include "linalg/matrix.h"

namespace hdmm {

/// LU factorization with partial pivoting: P A = L U, stored compactly.
class LuFactorization {
 public:
  /// Factors `a` (square). Check ok() before solving.
  explicit LuFactorization(const Matrix& a);

  /// True if the matrix was numerically nonsingular.
  bool ok() const { return ok_; }

  /// Solves A x = b. Requires ok().
  Vector Solve(const Vector& b) const;

  /// Solves A^T x = b. Requires ok().
  Vector SolveTranspose(const Vector& b) const;

  /// Solves A X = B column-wise. Requires ok().
  Matrix SolveMatrix(const Matrix& b) const;

  /// det(A) = sign(P) * prod_i u_ii. Requires ok().
  double Determinant() const;

 private:
  Matrix lu_;
  std::vector<int64_t> perm_;
  bool ok_;
};

/// Inverse of a general nonsingular square matrix. Dies if singular.
Matrix Inverse(const Matrix& a);

/// Solves an upper-triangular system U x = b. Dies on zero diagonal.
Vector UpperTriangularSolve(const Matrix& u, const Vector& b);

/// Solves U^T x = b with U upper triangular (i.e., a lower-triangular solve).
Vector UpperTriangularSolveTranspose(const Matrix& u, const Vector& b);

}  // namespace hdmm

#endif  // HDMM_LINALG_LU_H_
