#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "linalg/gemm.h"

namespace hdmm {

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Zeros(int64_t rows, int64_t cols) { return Matrix(rows, cols); }

Matrix Matrix::Ones(int64_t rows, int64_t cols) {
  Matrix m(rows, cols);
  std::fill(m.data_.begin(), m.data_.end(), 1.0);
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  int64_t n = static_cast<int64_t>(d.size());
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = d[static_cast<size_t>(i)];
  return m;
}

Matrix Matrix::RandomUniform(int64_t rows, int64_t cols, Rng* rng, double lo,
                             double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  HDMM_CHECK(!rows.empty());
  int64_t r = static_cast<int64_t>(rows.size());
  int64_t c = static_cast<int64_t>(rows[0].size());
  Matrix m(r, c);
  for (int64_t i = 0; i < r; ++i) {
    HDMM_CHECK(static_cast<int64_t>(rows[static_cast<size_t>(i)].size()) == c);
    std::copy(rows[static_cast<size_t>(i)].begin(),
              rows[static_cast<size_t>(i)].end(), m.Row(i));
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i)
    for (int64_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

void Matrix::ScaleInPlace(double alpha) {
  for (double& v : data_) v *= alpha;
}

void Matrix::AddInPlace(const Matrix& other, double alpha) {
  HDMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

Vector Matrix::RowVector(int64_t i) const {
  return Vector(Row(i), Row(i) + cols_);
}

Vector Matrix::ColVector(int64_t j) const {
  Vector v(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) v[static_cast<size_t>(i)] = (*this)(i, j);
  return v;
}

void Matrix::SetRow(int64_t i, const Vector& v) {
  HDMM_CHECK(static_cast<int64_t>(v.size()) == cols_);
  std::copy(v.begin(), v.end(), Row(i));
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Trace() const {
  HDMM_CHECK(rows_ == cols_);
  double s = 0.0;
  for (int64_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

double Matrix::FrobeniusNormSquared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::MaxAbsColSum() const {
  Vector sums = AbsColSums();
  double m = 0.0;
  for (double v : sums) m = std::max(m, v);
  return m;
}

Vector Matrix::AbsColSums() const {
  Vector sums(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j)
      sums[static_cast<size_t>(j)] += std::fabs(row[j]);
  }
  return sums;
}

Vector Matrix::ColSums() const {
  Vector sums(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j) sums[static_cast<size_t>(j)] += row[j];
  }
  return sums;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  HDMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

std::string Matrix::DebugString(int64_t max_rows, int64_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " matrix\n";
  for (int64_t i = 0; i < std::min(rows_, max_rows); ++i) {
    for (int64_t j = 0; j < std::min(cols_, max_cols); ++j) {
      os << (*this)(i, j) << (j + 1 < std::min(cols_, max_cols) ? " " : "");
    }
    if (cols_ > max_cols) os << " ...";
    os << "\n";
  }
  if (rows_ > max_rows) os << "...\n";
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulInto(a, b, &c);
  return c;
}

Matrix MatMulTN(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulTNInto(a, b, &c);
  return c;
}

Matrix MatMulNT(const Matrix& a, const Matrix& b) {
  Matrix c;
  MatMulNTInto(a, b, &c);
  return c;
}

Matrix Gram(const Matrix& a) {
  Matrix g;
  GramInto(a, &g);
  return g;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == a.cols());
  Vector y(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    double s = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) s += row[j] * x[static_cast<size_t>(j)];
    y[static_cast<size_t>(i)] = s;
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == a.rows());
  Vector y(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    const double* row = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) y[static_cast<size_t>(j)] += xi * row[j];
  }
  return y;
}

Matrix MatAdd(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.AddInPlace(b, 1.0);
  return c;
}

Matrix MatSub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.AddInPlace(b, -1.0);
  return c;
}

Matrix MatScale(const Matrix& a, double alpha) {
  Matrix c = a;
  c.ScaleInPlace(alpha);
  return c;
}

Matrix VStack(const std::vector<Matrix>& blocks) {
  HDMM_CHECK(!blocks.empty());
  int64_t cols = blocks[0].cols();
  int64_t rows = 0;
  for (const Matrix& b : blocks) {
    HDMM_CHECK(b.cols() == cols);
    rows += b.rows();
  }
  Matrix out(rows, cols);
  int64_t r = 0;
  for (const Matrix& b : blocks) {
    std::copy(b.data(), b.data() + b.size(), out.Row(r));
    r += b.rows();
  }
  return out;
}

}  // namespace hdmm
