#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace hdmm {
namespace {

// Threshold (in multiply-add flops) above which MatMul fans out to threads.
constexpr int64_t kParallelFlopThreshold = int64_t{1} << 24;

int NumWorkerThreads(int64_t flops) {
  if (flops < kParallelFlopThreshold) return 1;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Core kernel: C[r0:r1, :] += A[r0:r1, :] * B, with ikj loop order so the
// inner loop streams over contiguous rows of B and C.
void MatMulRows(const Matrix& a, const Matrix& b, Matrix* c, int64_t r0,
                int64_t r1) {
  const int64_t k_dim = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = r0; i < r1; ++i) {
    const double* arow = a.Row(i);
    double* crow = c->Row(i);
    for (int64_t k = 0; k < k_dim; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b.Row(k);
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void ParallelOverRows(int64_t rows, int64_t flops,
                      const std::function<void(int64_t, int64_t)>& body) {
  int threads = NumWorkerThreads(flops);
  if (threads <= 1 || rows < 2 * threads) {
    body(0, rows);
    return;
  }
  std::vector<std::thread> pool;
  int64_t chunk = (rows + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    int64_t r0 = t * chunk;
    int64_t r1 = std::min(rows, r0 + chunk);
    if (r0 >= r1) break;
    pool.emplace_back(body, r0, r1);
  }
  for (auto& th : pool) th.join();
}

}  // namespace

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Zeros(int64_t rows, int64_t cols) { return Matrix(rows, cols); }

Matrix Matrix::Ones(int64_t rows, int64_t cols) {
  Matrix m(rows, cols);
  std::fill(m.data_.begin(), m.data_.end(), 1.0);
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  int64_t n = static_cast<int64_t>(d.size());
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = d[static_cast<size_t>(i)];
  return m;
}

Matrix Matrix::RandomUniform(int64_t rows, int64_t cols, Rng* rng, double lo,
                             double hi) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng->Uniform(lo, hi);
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  HDMM_CHECK(!rows.empty());
  int64_t r = static_cast<int64_t>(rows.size());
  int64_t c = static_cast<int64_t>(rows[0].size());
  Matrix m(r, c);
  for (int64_t i = 0; i < r; ++i) {
    HDMM_CHECK(static_cast<int64_t>(rows[static_cast<size_t>(i)].size()) == c);
    std::copy(rows[static_cast<size_t>(i)].begin(),
              rows[static_cast<size_t>(i)].end(), m.Row(i));
  }
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i)
    for (int64_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

void Matrix::ScaleInPlace(double alpha) {
  for (double& v : data_) v *= alpha;
}

void Matrix::AddInPlace(const Matrix& other, double alpha) {
  HDMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

Vector Matrix::RowVector(int64_t i) const {
  return Vector(Row(i), Row(i) + cols_);
}

Vector Matrix::ColVector(int64_t j) const {
  Vector v(static_cast<size_t>(rows_));
  for (int64_t i = 0; i < rows_; ++i) v[static_cast<size_t>(i)] = (*this)(i, j);
  return v;
}

void Matrix::SetRow(int64_t i, const Vector& v) {
  HDMM_CHECK(static_cast<int64_t>(v.size()) == cols_);
  std::copy(v.begin(), v.end(), Row(i));
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Trace() const {
  HDMM_CHECK(rows_ == cols_);
  double s = 0.0;
  for (int64_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

double Matrix::FrobeniusNormSquared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

double Matrix::MaxAbsColSum() const {
  Vector sums = AbsColSums();
  double m = 0.0;
  for (double v : sums) m = std::max(m, v);
  return m;
}

Vector Matrix::AbsColSums() const {
  Vector sums(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j)
      sums[static_cast<size_t>(j)] += std::fabs(row[j]);
  }
  return sums;
}

Vector Matrix::ColSums() const {
  Vector sums(static_cast<size_t>(cols_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int64_t j = 0; j < cols_; ++j) sums[static_cast<size_t>(j)] += row[j];
  }
  return sums;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  HDMM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  return m;
}

std::string Matrix::DebugString(int64_t max_rows, int64_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " matrix\n";
  for (int64_t i = 0; i < std::min(rows_, max_rows); ++i) {
    for (int64_t j = 0; j < std::min(cols_, max_cols); ++j) {
      os << (*this)(i, j) << (j + 1 < std::min(cols_, max_cols) ? " " : "");
    }
    if (cols_ > max_cols) os << " ...";
    os << "\n";
  }
  if (rows_ > max_rows) os << "...\n";
  return os.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  HDMM_CHECK_MSG(a.cols() == b.rows(), "MatMul shape mismatch");
  Matrix c(a.rows(), b.cols());
  int64_t flops = a.rows() * a.cols() * b.cols();
  ParallelOverRows(a.rows(), flops, [&](int64_t r0, int64_t r1) {
    MatMulRows(a, b, &c, r0, r1);
  });
  return c;
}

Matrix MatMulTN(const Matrix& a, const Matrix& b) {
  HDMM_CHECK_MSG(a.rows() == b.rows(), "MatMulTN shape mismatch");
  // C = A^T B: accumulate outer products of matching rows. Row-major friendly.
  Matrix c(a.cols(), b.cols());
  const int64_t m = a.rows();
  const int64_t p = a.cols();
  const int64_t n = b.cols();
  for (int64_t k = 0; k < m; ++k) {
    const double* arow = a.Row(k);
    const double* brow = b.Row(k);
    for (int64_t i = 0; i < p; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* crow = c.Row(i);
      for (int64_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MatMulNT(const Matrix& a, const Matrix& b) {
  HDMM_CHECK_MSG(a.cols() == b.cols(), "MatMulNT shape mismatch");
  Matrix c(a.rows(), b.rows());
  int64_t flops = a.rows() * a.cols() * b.rows();
  ParallelOverRows(a.rows(), flops, [&](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const double* arow = a.Row(i);
      double* crow = c.Row(i);
      for (int64_t j = 0; j < b.rows(); ++j) {
        const double* brow = b.Row(j);
        double s = 0.0;
        for (int64_t k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
        crow[j] = s;
      }
    }
  });
  return c;
}

Matrix Gram(const Matrix& a) { return MatMulTN(a, a); }

Vector MatVec(const Matrix& a, const Vector& x) {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == a.cols());
  Vector y(static_cast<size_t>(a.rows()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double* row = a.Row(i);
    double s = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) s += row[j] * x[static_cast<size_t>(j)];
    y[static_cast<size_t>(i)] = s;
  }
  return y;
}

Vector MatTVec(const Matrix& a, const Vector& x) {
  HDMM_CHECK(static_cast<int64_t>(x.size()) == a.rows());
  Vector y(static_cast<size_t>(a.cols()), 0.0);
  for (int64_t i = 0; i < a.rows(); ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    const double* row = a.Row(i);
    for (int64_t j = 0; j < a.cols(); ++j) y[static_cast<size_t>(j)] += xi * row[j];
  }
  return y;
}

Matrix MatAdd(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.AddInPlace(b, 1.0);
  return c;
}

Matrix MatSub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.AddInPlace(b, -1.0);
  return c;
}

Matrix MatScale(const Matrix& a, double alpha) {
  Matrix c = a;
  c.ScaleInPlace(alpha);
  return c;
}

Matrix VStack(const std::vector<Matrix>& blocks) {
  HDMM_CHECK(!blocks.empty());
  int64_t cols = blocks[0].cols();
  int64_t rows = 0;
  for (const Matrix& b : blocks) {
    HDMM_CHECK(b.cols() == cols);
    rows += b.rows();
  }
  Matrix out(rows, cols);
  int64_t r = 0;
  for (const Matrix& b : blocks) {
    std::copy(b.data(), b.data() + b.size(), out.Row(r));
    r += b.rows();
  }
  return out;
}

}  // namespace hdmm
