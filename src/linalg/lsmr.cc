#include "linalg/lsmr.h"

#include <cmath>

#include "common/check.h"

namespace hdmm {

LsmrResult LsmrSolve(const LinearOperator& a, const Vector& b,
                     const LsmrOptions& options) {
  const int64_t m = a.Rows();
  const int64_t n = a.Cols();
  HDMM_CHECK(static_cast<int64_t>(b.size()) == m);

  LsmrResult result;
  result.x.assign(static_cast<size_t>(n), 0.0);

  // Golub-Kahan bidiagonalization initialization.
  Vector u = b;
  double beta = Norm2(u);
  if (beta > 0.0) Scale(1.0 / beta, &u);
  Vector v(static_cast<size_t>(n), 0.0);
  double alpha = 0.0;
  if (beta > 0.0) {
    a.ApplyTranspose(u, &v);
    alpha = Norm2(v);
    if (alpha > 0.0) Scale(1.0 / alpha, &v);
  }
  if (alpha * beta == 0.0) {
    result.converged = true;  // b is zero (or in the null space of A^T).
    return result;
  }

  double zetabar = alpha * beta;
  double alphabar = alpha;
  double rho = 1.0, rhobar = 1.0, cbar = 1.0, sbar = 0.0;
  Vector h = v;
  Vector hbar(static_cast<size_t>(n), 0.0);

  // Residual-norm estimation state.
  double betadd = beta, betad = 0.0;
  double rhodold = 1.0, tautildeold = 0.0, thetatilde = 0.0, zeta = 0.0;
  double d = 0.0;
  double norm_a2 = alpha * alpha;
  const double normb = beta;

  Vector tmp;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Continue the bidiagonalization: u = A v - alpha u.
    a.Apply(v, &tmp);
    for (size_t i = 0; i < u.size(); ++i) u[i] = tmp[i] - alpha * u[i];
    beta = Norm2(u);
    if (beta > 0.0) {
      Scale(1.0 / beta, &u);
      a.ApplyTranspose(u, &tmp);
      for (size_t i = 0; i < v.size(); ++i) v[i] = tmp[i] - beta * v[i];
      alpha = Norm2(v);
      if (alpha > 0.0) Scale(1.0 / alpha, &v);
    }
    norm_a2 += beta * beta + alpha * alpha;

    // Plane rotations (damp = 0).
    const double alphahat = alphabar;
    const double rhoold = rho;
    rho = std::hypot(alphahat, beta);
    const double c = alphahat / rho;
    const double s = beta / rho;
    const double thetanew = s * alpha;
    alphabar = c * alpha;

    const double rhobarold = rhobar;
    const double zetaold = zeta;
    const double thetabar = sbar * rho;
    const double rhotemp = cbar * rho;
    rhobar = std::hypot(cbar * rho, thetanew);
    cbar = cbar * rho / rhobar;
    sbar = thetanew / rhobar;
    zeta = cbar * zetabar;
    zetabar = -sbar * zetabar;

    // Update h, hbar, x.
    const double hbar_coeff = thetabar * rho / (rhoold * rhobarold);
    for (size_t i = 0; i < hbar.size(); ++i)
      hbar[i] = h[i] - hbar_coeff * hbar[i];
    const double x_coeff = zeta / (rho * rhobar);
    for (size_t i = 0; i < result.x.size(); ++i)
      result.x[i] += x_coeff * hbar[i];
    const double h_coeff = thetanew / rho;
    for (size_t i = 0; i < h.size(); ++i) h[i] = v[i] - h_coeff * h[i];

    // Residual estimates.
    const double betaacute = betadd;  // chat = 1, shat = 0 when damp = 0.
    const double betacheck = 0.0;
    const double betahat = c * betaacute;
    betadd = -s * betaacute;

    const double thetatildeold = thetatilde;
    const double rhotildeold = std::hypot(rhodold, thetabar);
    const double ctildeold = rhodold / rhotildeold;
    const double stildeold = thetabar / rhotildeold;
    thetatilde = stildeold * rhobar;
    rhodold = ctildeold * rhobar;
    betad = -stildeold * betad + ctildeold * betahat;

    tautildeold = (zetaold - thetatildeold * tautildeold) / rhotildeold;
    const double taud = (zeta - thetatilde * tautildeold) / rhodold;
    d += betacheck * betacheck;
    const double normr =
        std::sqrt(d + (betad - taud) * (betad - taud) + betadd * betadd);
    const double normar = std::fabs(zetabar);
    const double norma = std::sqrt(norm_a2);

    result.residual_norm = normr;
    result.normal_residual = normar;

    // Convergence tests (as in Fong & Saunders).
    if (normar <= options.atol * norma * normr + 1e-300) {
      result.converged = true;
      break;
    }
    if (normr <= options.btol * normb + options.atol * norma * Norm2(result.x)) {
      result.converged = true;
      break;
    }
    (void)rhotemp;
  }
  return result;
}

}  // namespace hdmm
