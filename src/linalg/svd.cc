#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace hdmm {

namespace {

// One-sided Jacobi kernel. Orthogonalizes the columns of `work` (m x n,
// m >= n is NOT required here) in place and, when `v` is non-null,
// accumulates the applied rotations so that original = work * v^T.
// Returns after max_sweeps or once every column pair satisfies
// |u_p . u_q| <= tol * ||u_p|| * ||u_q||.
void JacobiOrthogonalize(Matrix* work, Matrix* v, int max_sweeps, double tol) {
  const int64_t m = work->rows();
  const int64_t n = work->cols();
  if (v != nullptr) *v = Matrix::Identity(n);
  if (n < 2) return;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (int64_t i = 0; i < m; ++i) {
          const double up = (*work)(i, p);
          const double uq = (*work)(i, q);
          alpha += up * up;
          beta += uq * uq;
          gamma += up * uq;
        }
        if (alpha == 0.0 || beta == 0.0) continue;
        if (std::abs(gamma) <= tol * std::sqrt(alpha * beta)) continue;
        rotated = true;

        // Closed-form Jacobi rotation zeroing the (p, q) column inner
        // product (Golub & Van Loan sec. 8.6.3).
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (int64_t i = 0; i < m; ++i) {
          const double up = (*work)(i, p);
          const double uq = (*work)(i, q);
          (*work)(i, p) = c * up - s * uq;
          (*work)(i, q) = s * up + c * uq;
        }
        if (v != nullptr) {
          for (int64_t i = 0; i < n; ++i) {
            const double vp = (*v)(i, p);
            const double vq = (*v)(i, q);
            (*v)(i, p) = c * vp - s * vq;
            (*v)(i, q) = s * vp + c * vq;
          }
        }
      }
    }
    if (!rotated) break;
  }
}

// Column norms of an orthogonalized working matrix = singular values.
Vector ColumnNorms(const Matrix& work) {
  Vector s(static_cast<size_t>(work.cols()), 0.0);
  for (int64_t j = 0; j < work.cols(); ++j) {
    double acc = 0.0;
    for (int64_t i = 0; i < work.rows(); ++i) {
      acc += work(i, j) * work(i, j);
    }
    s[static_cast<size_t>(j)] = std::sqrt(acc);
  }
  return s;
}

// Descending order of s, applied consistently to the columns of u and v.
void SortDescending(Vector* s, Matrix* u, Matrix* v) {
  const int64_t r = static_cast<int64_t>(s->size());
  std::vector<int64_t> order(static_cast<size_t>(r));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return (*s)[static_cast<size_t>(a)] > (*s)[static_cast<size_t>(b)];
  });

  Vector s_sorted(static_cast<size_t>(r));
  Matrix u_sorted(u->rows(), r);
  Matrix v_sorted(v->rows(), r);
  for (int64_t k = 0; k < r; ++k) {
    const int64_t src = order[static_cast<size_t>(k)];
    s_sorted[static_cast<size_t>(k)] = (*s)[static_cast<size_t>(src)];
    for (int64_t i = 0; i < u->rows(); ++i) u_sorted(i, k) = (*u)(i, src);
    for (int64_t i = 0; i < v->rows(); ++i) v_sorted(i, k) = (*v)(i, src);
  }
  *s = std::move(s_sorted);
  *u = std::move(u_sorted);
  *v = std::move(v_sorted);
}

// Thin SVD for the m >= n orientation: Jacobi on the columns of A, then
// normalize to get U, and read V off the accumulated rotations.
Svd SvdTall(const Matrix& a, int max_sweeps, double tol) {
  Matrix work = a;
  Matrix v;
  JacobiOrthogonalize(&work, &v, max_sweeps, tol);

  Vector s = ColumnNorms(work);
  const double s_max = s.empty() ? 0.0 : *std::max_element(s.begin(), s.end());

  // Normalize the non-negligible columns into U. Zero singular directions
  // keep a zero column in U: the thin factorization A = U diag(s) V^T is
  // unaffected because the corresponding s entry is zero.
  Matrix u = work;
  for (int64_t j = 0; j < u.cols(); ++j) {
    const double sj = s[static_cast<size_t>(j)];
    if (sj > 1e-300 && sj > tol * s_max) {
      for (int64_t i = 0; i < u.rows(); ++i) u(i, j) /= sj;
    } else {
      s[static_cast<size_t>(j)] = 0.0;
      for (int64_t i = 0; i < u.rows(); ++i) u(i, j) = 0.0;
    }
  }
  SortDescending(&s, &u, &v);
  return Svd{std::move(u), std::move(s), std::move(v)};
}

}  // namespace

int64_t Svd::Rank(double rcond) const {
  if (singular_values.empty()) return 0;
  const double cutoff = rcond * singular_values.front();
  int64_t rank = 0;
  for (double sv : singular_values) {
    if (sv > cutoff && sv > 0.0) ++rank;
  }
  return rank;
}

Matrix Svd::Reconstruct() const {
  Matrix us = u;
  for (int64_t j = 0; j < us.cols(); ++j) {
    const double sj = singular_values[static_cast<size_t>(j)];
    for (int64_t i = 0; i < us.rows(); ++i) us(i, j) *= sj;
  }
  return MatMulNT(us, v);
}

Svd ComputeSvd(const Matrix& a, int max_sweeps, double tol) {
  HDMM_CHECK(a.rows() > 0 && a.cols() > 0);
  if (a.rows() >= a.cols()) {
    return SvdTall(a, max_sweeps, tol);
  }
  // Wide input: decompose A^T = U' S V'^T, so A = V' S U'^T.
  Svd t = SvdTall(a.Transposed(), max_sweeps, tol);
  return Svd{std::move(t.v), std::move(t.singular_values), std::move(t.u)};
}

Vector SingularValues(const Matrix& a, int max_sweeps, double tol) {
  HDMM_CHECK(a.rows() > 0 && a.cols() > 0);
  Matrix work = a.rows() >= a.cols() ? a : a.Transposed();
  JacobiOrthogonalize(&work, /*v=*/nullptr, max_sweeps, tol);
  Vector s = ColumnNorms(work);
  std::sort(s.begin(), s.end(), std::greater<double>());
  return s;
}

double NuclearNorm(const Matrix& a) {
  const Vector s = SingularValues(a);
  double total = 0.0;
  for (double sv : s) total += sv;
  return total;
}

double SpectralNorm(const Matrix& a) {
  const Vector s = SingularValues(a);
  return s.empty() ? 0.0 : s.front();
}

Matrix PinvViaSvd(const Matrix& a, double rcond) {
  const Svd svd = ComputeSvd(a);
  const double s_max =
      svd.singular_values.empty() ? 0.0 : svd.singular_values.front();
  const double cutoff = rcond * s_max;

  // A^+ = V diag(1/s) U^T over the retained spectrum.
  Matrix v_scaled = svd.v;
  for (int64_t j = 0; j < v_scaled.cols(); ++j) {
    const double sj = svd.singular_values[static_cast<size_t>(j)];
    const double inv = (sj > cutoff && sj > 0.0) ? 1.0 / sj : 0.0;
    for (int64_t i = 0; i < v_scaled.rows(); ++i) v_scaled(i, j) *= inv;
  }
  return MatMulNT(v_scaled, svd.u);
}

}  // namespace hdmm
