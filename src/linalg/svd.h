// Singular value decomposition via the one-sided Jacobi method. Provides the
// spectral quantities behind the Li-Miklau lower bound on strategy error
// (Section 9 discussion) and a backward-stable pseudo-inverse alternative for
// rank-deficient strategies.
#ifndef HDMM_LINALG_SVD_H_
#define HDMM_LINALG_SVD_H_

#include "linalg/matrix.h"

namespace hdmm {

/// Thin singular value decomposition A = U diag(s) V^T.
///
/// For an m x n input with r = min(m, n): `u` is m x r with orthonormal
/// columns, `singular_values` holds the r singular values in descending
/// order, and `v` is n x r with orthonormal columns.
struct Svd {
  Matrix u;
  Vector singular_values;
  Matrix v;

  /// Number of singular values above rcond * s_max (the numerical rank).
  int64_t Rank(double rcond = 1e-12) const;

  /// U diag(s) V^T, for testing the factorization.
  Matrix Reconstruct() const;
};

/// Computes the thin SVD using one-sided Jacobi rotations: columns of a
/// working copy of A are rotated pairwise until mutually orthogonal, which
/// yields U diag(s) directly and accumulates V. O(m n^2) per sweep and
/// unconditionally backward stable; sweeps needed is small (< 20) for the
/// matrices this library produces.
Svd ComputeSvd(const Matrix& a, int max_sweeps = 60, double tol = 1e-13);

/// Singular values only (descending). Cheaper than ComputeSvd when the
/// factors are not needed: skips the U normalization and V accumulation.
Vector SingularValues(const Matrix& a, int max_sweeps = 60,
                      double tol = 1e-13);

/// Nuclear norm ||A||_* = sum of singular values.
double NuclearNorm(const Matrix& a);

/// Spectral norm ||A||_2 = largest singular value.
double SpectralNorm(const Matrix& a);

/// Moore-Penrose pseudo-inverse through the SVD: V diag(1/s) U^T with
/// singular values below rcond * s_max treated as zero. Slower than the
/// Gram-based PseudoInverse but stable for heavily rank-deficient inputs.
Matrix PinvViaSvd(const Matrix& a, double rcond = 1e-12);

}  // namespace hdmm

#endif  // HDMM_LINALG_SVD_H_
