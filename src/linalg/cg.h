// Conjugate gradient for SPD implicit operators. Used by the matrix-free
// expected-error estimator for baseline strategies on large domains.
#ifndef HDMM_LINALG_CG_H_
#define HDMM_LINALG_CG_H_

#include "linalg/linear_operator.h"

namespace hdmm {

/// Options for conjugate gradient.
struct CgOptions {
  int max_iterations = 2000;
  double rtol = 1e-10;  ///< Relative residual tolerance.
};

/// Result of a CG solve.
struct CgResult {
  Vector x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves A x = b for symmetric positive definite operator A.
CgResult CgSolve(const LinearOperator& a, const Vector& b,
                 const CgOptions& options = CgOptions());

}  // namespace hdmm

#endif  // HDMM_LINALG_CG_H_
