#include "linalg/linear_operator.h"

namespace hdmm {

Vector LinearOperator::Apply(const Vector& x) const {
  Vector y;
  Apply(x, &y);
  return y;
}

Vector LinearOperator::ApplyTranspose(const Vector& x) const {
  Vector y;
  ApplyTranspose(x, &y);
  return y;
}

void DenseOperator::Apply(const Vector& x, Vector* y) const {
  *y = MatVec(a_, x);
}

void DenseOperator::ApplyTranspose(const Vector& x, Vector* y) const {
  *y = MatTVec(a_, x);
}

void ScaledOperator::Apply(const Vector& x, Vector* y) const {
  a_->Apply(x, y);
  Scale(alpha_, y);
}

void ScaledOperator::ApplyTranspose(const Vector& x, Vector* y) const {
  a_->ApplyTranspose(x, y);
  Scale(alpha_, y);
}

StackedOperator::StackedOperator(
    std::vector<std::shared_ptr<const LinearOperator>> blocks)
    : blocks_(std::move(blocks)), rows_(0), cols_(0) {
  HDMM_CHECK(!blocks_.empty());
  cols_ = blocks_[0]->Cols();
  for (const auto& b : blocks_) {
    HDMM_CHECK(b->Cols() == cols_);
    rows_ += b->Rows();
  }
}

void StackedOperator::Apply(const Vector& x, Vector* y) const {
  y->assign(static_cast<size_t>(rows_), 0.0);
  size_t offset = 0;
  Vector part;
  for (const auto& b : blocks_) {
    b->Apply(x, &part);
    std::copy(part.begin(), part.end(), y->begin() + static_cast<long>(offset));
    offset += part.size();
  }
}

void StackedOperator::ApplyTranspose(const Vector& x, Vector* y) const {
  y->assign(static_cast<size_t>(cols_), 0.0);
  size_t offset = 0;
  Vector part, sub;
  for (const auto& b : blocks_) {
    size_t r = static_cast<size_t>(b->Rows());
    sub.assign(x.begin() + static_cast<long>(offset),
               x.begin() + static_cast<long>(offset + r));
    b->ApplyTranspose(sub, &part);
    for (size_t i = 0; i < part.size(); ++i) (*y)[i] += part[i];
    offset += r;
  }
}

void GramOperator::Apply(const Vector& x, Vector* y) const {
  Vector mid;
  a_->Apply(x, &mid);
  a_->ApplyTranspose(mid, y);
}

}  // namespace hdmm
