// Text format for domains and union-of-products workloads, so workloads can
// be stored in version control, shipped to the CLI tool, and shared between
// deployments without writing C++. The format mirrors the paper's logical
// view (Section 3.3): a domain declaration followed by one product per line,
// each product a conjunction of per-attribute predicate-set blocks.
//
//   # Census-style example (comments run to end of line)
//   domain sex=2 age=115 race=64
//
//   product weight=2.0 sex=identity age=prefix
//   product age=range(0,4) sex=point(1)
//   product age=width(32)
//   marginals k=2                       # all 2-way marginals
//
// Unmentioned attributes default to the Total block (the paper's convention
// for products that do not constrain an attribute). Supported blocks:
//
//   identity          one point predicate per domain element
//   total             the single True predicate
//   identitytotal     identity plus the total row (the SF1+ state trick)
//   prefix            all prefix ranges [0, i]
//   allrange          all ranges [i, j]
//   width(w)          all ranges of width exactly w
//   point(v)          the single predicate t.A == v
//   range(lo,hi)      the single predicate lo <= t.A <= hi (inclusive)
//   matrix(RxC:v,v,...)    explicit rows, row-major, no internal whitespace
//                          (the serializer's fallback for unnamed blocks)
//
// Workload lines:
//
//   product [weight=X] attr=block ...   one product term
//   marginals k=K                       all K-way marginals
//   marginals upto=K                    all j-way marginals for j <= K
//   marginals all                       all 2^d marginals
#ifndef HDMM_WORKLOAD_PARSER_H_
#define HDMM_WORKLOAD_PARSER_H_

#include <string>

#include "workload/workload.h"

namespace hdmm {

/// Parses a workload spec. On success fills *out and returns true; on
/// malformed input returns false and fills *error with a line-numbered
/// message. The spec must contain exactly one `domain` line (first
/// non-comment line) and at least one workload line.
bool ParseWorkload(const std::string& text, UnionWorkload* out,
                   std::string* error);

/// ParseWorkload from a file path.
bool LoadWorkloadFile(const std::string& path, UnionWorkload* out,
                      std::string* error);

/// ParseWorkload that dies with a diagnostic on malformed input (for tests
/// and examples where the spec is a compile-time constant).
UnionWorkload ParseWorkloadOrDie(const std::string& text);

/// Renders a workload back into the spec format. Factors whose structure
/// matches a named block (identity, total, prefix, point, range, ...) are
/// emitted by name; anything else is emitted as an explicit matrix literal,
/// so Serialize/Parse round-trips every representable workload exactly.
std::string SerializeWorkload(const UnionWorkload& w);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_PARSER_H_
