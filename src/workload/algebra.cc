#include "workload/algebra.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {

UnionWorkload UnionOf(const UnionWorkload& a, const UnionWorkload& b) {
  HDMM_CHECK_MSG(a.domain().NumAttributes() == b.domain().NumAttributes(),
                 "UnionOf: domains have different dimensionality");
  for (int i = 0; i < a.domain().NumAttributes(); ++i) {
    HDMM_CHECK_MSG(a.domain().AttributeSize(i) == b.domain().AttributeSize(i),
                   "UnionOf: attribute size mismatch");
  }
  UnionWorkload out(a.domain());
  for (const ProductWorkload& p : a.products()) out.AddProduct(p);
  for (const ProductWorkload& p : b.products()) out.AddProduct(p);
  return out;
}

UnionWorkload ScaleWeights(const UnionWorkload& w, double c) {
  HDMM_CHECK_MSG(c > 0.0, "ScaleWeights: scale must be positive");
  UnionWorkload out(w.domain());
  for (ProductWorkload p : w.products()) {
    p.weight *= c;
    out.AddProduct(std::move(p));
  }
  return out;
}

UnionWorkload AppendAttribute(const UnionWorkload& w, const Matrix& block,
                              const std::string& name) {
  HDMM_CHECK_MSG(block.rows() >= 1 && block.cols() >= 1,
                 "AppendAttribute: empty block");
  std::vector<std::string> names;
  std::vector<int64_t> sizes;
  for (int i = 0; i < w.domain().NumAttributes(); ++i) {
    names.push_back(w.domain().AttributeName(i));
    sizes.push_back(w.domain().AttributeSize(i));
  }
  names.push_back(name);
  sizes.push_back(block.cols());

  UnionWorkload out(Domain(std::move(names), std::move(sizes)));
  for (const ProductWorkload& p : w.products()) {
    ProductWorkload extended = p;
    extended.factors.push_back(block);
    out.AddProduct(std::move(extended));
  }
  return out;
}

UnionWorkload MarginalizeAttribute(const UnionWorkload& w, int attr) {
  HDMM_CHECK(attr >= 0 && attr < w.domain().NumAttributes());
  const int64_t n = w.domain().AttributeSize(attr);
  UnionWorkload out(w.domain());
  for (ProductWorkload p : w.products()) {
    p.factors[static_cast<size_t>(attr)] = TotalBlock(n);
    out.AddProduct(std::move(p));
  }
  return out;
}

UnionWorkload MergeDuplicateProducts(const UnionWorkload& w) {
  UnionWorkload out(w.domain());
  std::vector<ProductWorkload> merged;
  for (const ProductWorkload& p : w.products()) {
    bool found = false;
    for (ProductWorkload& m : merged) {
      if (m.factors.size() != p.factors.size()) continue;
      bool same = true;
      for (size_t i = 0; i < p.factors.size() && same; ++i) {
        if (m.factors[i].rows() != p.factors[i].rows() ||
            m.factors[i].cols() != p.factors[i].cols() ||
            m.factors[i].MaxAbsDiff(p.factors[i]) != 0.0) {
          same = false;
        }
      }
      if (same) {
        // Gram-preserving combination: weights enter W^T W quadratically.
        m.weight = std::sqrt(m.weight * m.weight + p.weight * p.weight);
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(p);
  }
  for (ProductWorkload& m : merged) out.AddProduct(std::move(m));
  return out;
}

}  // namespace hdmm
