// Marginal workloads (Section 6.3): a marginal over attribute subset S is the
// product with Identity factors on S and Total factors elsewhere. Subsets are
// encoded as bitmasks, bit i = attribute i (the paper's binary encoding of
// [2^d], Appendix A.4).
#ifndef HDMM_WORKLOAD_MARGINALS_H_
#define HDMM_WORKLOAD_MARGINALS_H_

#include <cstdint>

#include "workload/domain.h"
#include "workload/workload.h"

namespace hdmm {

/// The single marginal over the attribute subset given by `mask`
/// (bit i set = attribute i is a grouping attribute).
ProductWorkload MarginalProduct(const Domain& domain, uint32_t mask,
                                double weight = 1.0);

/// All (d choose k) k-way marginals.
UnionWorkload KWayMarginals(const Domain& domain, int k);

/// All marginals with at most K grouping attributes (the "up-to-K-way"
/// workloads of Table 5).
UnionWorkload UpToKWayMarginals(const Domain& domain, int k);

/// The full set of 2^d marginals (the "All Marginals" workload).
UnionWorkload AllMarginals(const Domain& domain);

/// Like KWayMarginals but replacing Identity with an arbitrary block on
/// selected attributes — builds the Range-Marginals workloads of Section 8.1
/// (range queries on "numeric" attributes, Identity elsewhere).
/// `numeric_blocks[i]` is the block to use when attribute i is in the subset;
/// an empty matrix means use Identity.
UnionWorkload KWayRangeMarginals(const Domain& domain, int k,
                                 const std::vector<Matrix>& numeric_blocks);

/// Union of KWayRangeMarginals over all subset sizes 0..d (the
/// "All Range-Marginals" workload).
UnionWorkload AllRangeMarginals(const Domain& domain,
                                const std::vector<Matrix>& numeric_blocks);

/// Number of set bits (subset size) of a marginal mask.
int PopCount(uint32_t mask);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_MARGINALS_H_
