#include "workload/marginals.h"

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {

int PopCount(uint32_t mask) {
  int c = 0;
  while (mask != 0) {
    c += static_cast<int>(mask & 1u);
    mask >>= 1;
  }
  return c;
}

ProductWorkload MarginalProduct(const Domain& domain, uint32_t mask,
                                double weight) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(d <= 31);
  ProductWorkload p;
  p.weight = weight;
  for (int i = 0; i < d; ++i) {
    const int64_t n = domain.AttributeSize(i);
    // Bit i corresponds to attribute i; grouping attributes get Identity.
    if ((mask >> i) & 1u) {
      p.factors.push_back(IdentityBlock(n));
    } else {
      p.factors.push_back(TotalBlock(n));
    }
  }
  return p;
}

UnionWorkload KWayMarginals(const Domain& domain, int k) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(k >= 0 && k <= d);
  UnionWorkload w(domain);
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    if (PopCount(mask) == k) w.AddProduct(MarginalProduct(domain, mask));
  }
  return w;
}

UnionWorkload UpToKWayMarginals(const Domain& domain, int k) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(k >= 0 && k <= d);
  UnionWorkload w(domain);
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    if (PopCount(mask) <= k) w.AddProduct(MarginalProduct(domain, mask));
  }
  return w;
}

UnionWorkload AllMarginals(const Domain& domain) {
  return UpToKWayMarginals(domain, domain.NumAttributes());
}

namespace {

ProductWorkload RangeMarginalProduct(const Domain& domain, uint32_t mask,
                                     const std::vector<Matrix>& blocks) {
  ProductWorkload p;
  for (int i = 0; i < domain.NumAttributes(); ++i) {
    const int64_t n = domain.AttributeSize(i);
    if ((mask >> i) & 1u) {
      const Matrix& blk = blocks[static_cast<size_t>(i)];
      if (blk.size() > 0) {
        HDMM_CHECK(blk.cols() == n);
        p.factors.push_back(blk);
      } else {
        p.factors.push_back(IdentityBlock(n));
      }
    } else {
      p.factors.push_back(TotalBlock(n));
    }
  }
  return p;
}

}  // namespace

UnionWorkload KWayRangeMarginals(const Domain& domain, int k,
                                 const std::vector<Matrix>& numeric_blocks) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(static_cast<int>(numeric_blocks.size()) == d);
  UnionWorkload w(domain);
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    if (PopCount(mask) == k)
      w.AddProduct(RangeMarginalProduct(domain, mask, numeric_blocks));
  }
  return w;
}

UnionWorkload AllRangeMarginals(const Domain& domain,
                                const std::vector<Matrix>& numeric_blocks) {
  const int d = domain.NumAttributes();
  HDMM_CHECK(static_cast<int>(numeric_blocks.size()) == d);
  UnionWorkload w(domain);
  for (uint32_t mask = 0; mask < (1u << d); ++mask) {
    w.AddProduct(RangeMarginalProduct(domain, mask, numeric_blocks));
  }
  return w;
}

}  // namespace hdmm
