// Per-attribute predicate-set matrices (Section 3.3): Identity, Total,
// Prefix, AllRange, and friends, plus closed-form Gram matrices W^T W that
// avoid materializing the quadratically-sized workloads.
#ifndef HDMM_WORKLOAD_BUILDING_BLOCKS_H_
#define HDMM_WORKLOAD_BUILDING_BLOCKS_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace hdmm {

/// Identity_A: one point predicate per domain element (n x n identity).
Matrix IdentityBlock(int64_t n);

/// Total_A: the single True predicate (1 x n of ones).
Matrix TotalBlock(int64_t n);

/// Prefix_A: predicates a_1 <= t.A <= a_i for each i (n x n lower-triangular
/// ones). A compact proxy for all range queries; defines the CDF.
Matrix PrefixBlock(int64_t n);

/// AllRange_A: all interval predicates a_i <= t.A <= a_j
/// (n(n+1)/2 x n). Quadratic in n: use AllRangeGram for large domains.
Matrix AllRangeBlock(int64_t n);

/// All width-w ranges (n-w+1 x n), the "Width 32 Range" workload family.
Matrix WidthRangeBlock(int64_t n, int64_t w);

/// AllRange right-multiplied by a random permutation (the Permuted Range
/// workload of Section 8.1): destroys locality while preserving spectrum.
Matrix PermutedRangeBlock(int64_t n, Rng* rng);

/// Closed-form Gram matrix of PrefixBlock: (W^T W)_{ij} = n - max(i, j).
Matrix PrefixGram(int64_t n);

/// Closed-form Gram of AllRangeBlock:
/// (W^T W)_{ij} = (min(i,j)+1) * (n - max(i,j)).
Matrix AllRangeGram(int64_t n);

/// Closed-form Gram of WidthRangeBlock.
Matrix WidthRangeGram(int64_t n, int64_t w);

/// Gram of a permuted workload: P^T G P for permutation perm.
Matrix PermuteGram(const Matrix& g, const std::vector<int>& perm);

/// Haar wavelet strategy matrix for n a power of two: one total row plus
/// difference rows at every dyadic level (the Privelet strategy [43]).
/// Sensitivity log2(n) + 1.
Matrix HaarBlock(int64_t n);

/// Hierarchical strategy with branching factor b (the HB strategy [36]):
/// all levels of a b-ary aggregation tree, leaves included.
Matrix HierarchicalBlock(int64_t n, int64_t b);

/// The 2^level x n dyadic partition matrix (row r sums cells in block r).
/// Requires n divisible by 2^level. Building block of the QuadTree strategy.
Matrix DyadicPartitionBlock(int64_t n, int level);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_BUILDING_BLOCKS_H_
