// SQL front-end for predicate counting queries (Section 2 / Section 3.2 of
// the paper). Each statement of the form
//
//   SELECT COUNT(*) FROM R WHERE sex = 1 AND age <= 4
//   SELECT sex, age, COUNT(*) FROM R WHERE hispanic = 1 GROUP BY sex, age
//
// is translated into one ProductWorkload exactly as in the paper's
// Examples 2 and 3: per-attribute WHERE predicates become singleton
// predicate-set blocks, GROUP BY attributes become Identity blocks (one
// query per group), and unmentioned attributes default to Total. A script of
// semicolon-separated statements becomes a UnionWorkload — the logical form
// that ImpVec / OPT_HDMM consume.
//
// Supported predicate grammar (conjunctions only, per the paper's query
// class; disjunctions require the attribute-merging transformation of
// Example 1):
//
//   predicate := attr op integer
//              | attr BETWEEN integer AND integer
//              | attr IN ( integer [, integer]* )
//   op        := = | != | < | <= | > | >=
//
// Attribute values are domain positions in [0, |dom(A)|). Keywords are
// case-insensitive; attribute names are case-sensitive and must match the
// Domain.
#ifndef HDMM_WORKLOAD_SQL_H_
#define HDMM_WORKLOAD_SQL_H_

#include <string>

#include "workload/domain.h"
#include "workload/workload.h"

namespace hdmm {

/// Translates one SELECT COUNT(*) statement (without trailing semicolon)
/// into a product workload over `domain`. Returns false and fills *error on
/// syntax errors, unknown attributes, or out-of-domain constants.
bool ParseSqlQuery(const std::string& sql, const Domain& domain,
                   ProductWorkload* out, std::string* error);

/// Translates a script of semicolon-separated statements into a union of
/// products (one product per statement, in order). Empty statements are
/// ignored; the script must contain at least one query.
bool ParseSqlWorkload(const std::string& script, const Domain& domain,
                      UnionWorkload* out, std::string* error);

/// ParseSqlWorkload that dies with a diagnostic on malformed input.
UnionWorkload ParseSqlWorkloadOrDie(const std::string& script,
                                    const Domain& domain);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_SQL_H_
