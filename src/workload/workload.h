// Implicit workload representations (Section 4): products of per-attribute
// blocks and weighted unions of products, with the operations (Gram matrices,
// operators, storage accounting) that make the implicit form useful.
#ifndef HDMM_WORKLOAD_WORKLOAD_H_
#define HDMM_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <vector>

#include "linalg/kron.h"
#include "linalg/linear_operator.h"
#include "linalg/matrix.h"
#include "workload/domain.h"

namespace hdmm {

/// One product term W_1 x ... x W_d (Definition 2 / Equation 1): the queries
/// are all conjunctions of one row from each factor. `weight` scales every
/// query in the product (Section 3.3, weighted workloads).
struct ProductWorkload {
  std::vector<Matrix> factors;
  double weight = 1.0;

  /// Number of queries = product of factor row counts.
  int64_t NumQueries() const;

  /// Domain size = product of factor column counts.
  int64_t DomainSize() const;

  /// Explicit (small-domain) expansion: weight * (W_1 x ... x W_d).
  Matrix Explicit() const;

  /// Gram matrix of factor i: W_i^T W_i. Served from the process-wide
  /// GramCache (content-keyed, closed-form aware), so repeated calls across
  /// restarts and plan invocations do not recompute the SYRK; this overload
  /// copies the cached Gram into the returned value.
  Matrix FactorGram(int i) const;

  /// Copy-free variant: the shared immutable cached Gram of factor i.
  std::shared_ptr<const Matrix> FactorGramShared(int i) const;

  /// Number of doubles stored by the implicit representation.
  int64_t ImplicitStorageDoubles() const;
};

/// A weighted union of products W = w_1 W_1 + ... + w_k W_k (stacking).
class UnionWorkload {
 public:
  UnionWorkload() = default;
  explicit UnionWorkload(Domain domain) : domain_(std::move(domain)) {}

  /// Appends a product term; its factor column counts must match the domain.
  void AddProduct(ProductWorkload p);

  const Domain& domain() const { return domain_; }
  const std::vector<ProductWorkload>& products() const { return products_; }
  int NumProducts() const { return static_cast<int>(products_.size()); }

  /// Total number of predicate counting queries across all products.
  int64_t TotalQueries() const;

  /// N = |dom(R)|.
  int64_t DomainSize() const { return domain_.TotalSize(); }

  /// Explicit stacked matrix (small domains only; weights folded in).
  Matrix Explicit() const;

  /// Explicit Gram matrix W^T W = sum_j w_j^2 kron_i G_i^(j) (Section 4.4).
  /// Only for modest N.
  Matrix ExplicitGram() const;

  /// Implicit operator for matrix-vector products with W.
  std::shared_ptr<LinearOperator> ToOperator() const;

  /// Doubles needed by the implicit representation (Examples 6-7).
  int64_t ImplicitStorageDoubles() const;

  /// Doubles an explicit dense matrix would need (Examples 6-7).
  int64_t ExplicitStorageDoubles() const;

  /// Exact per-column absolute sums of the stacked workload, expanded over
  /// the full domain: used for the Laplace-mechanism sensitivity. Requires
  /// N <= max_cells (memory guard; dies beyond it).
  Vector AbsColumnSums(int64_t max_cells = (int64_t{1} << 26)) const;

  /// Sensitivity ||W||_1 (max abs column sum) via AbsColumnSums when the
  /// domain is small enough, else the per-product upper bound
  /// sum_j w_j prod_i ||W_i||_1 (exact when column profiles are uniform).
  double Sensitivity() const;

 private:
  Domain domain_;
  std::vector<ProductWorkload> products_;
};

/// Builds a single-product union. Convenience used all over the benches.
UnionWorkload MakeProductWorkload(Domain domain, std::vector<Matrix> factors,
                                  double weight = 1.0);

/// Re-weights each product inversely to its average query L1 norm — the
/// Section 9 heuristic for approximately optimizing *relative* error on
/// near-uniform data ("by weighting the workload queries (e.g. inversely
/// with their L1-norm) we can approximately optimize relative error").
/// Returns a new workload with adjusted weights.
UnionWorkload WeightForRelativeError(const UnionWorkload& w);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_WORKLOAD_H_
