#include "workload/parser.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "workload/building_blocks.h"
#include "workload/marginals.h"

namespace hdmm {
namespace {

// --- Lexical helpers --------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// Splits "key=value"; returns false if there is no '='.
bool SplitKeyValue(const std::string& tok, std::string* key,
                   std::string* value) {
  const size_t eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  *key = tok.substr(0, eq);
  *value = tok.substr(eq + 1);
  return true;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

std::string LineError(int line_no, const std::string& message) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "line %d: %s", line_no, message.c_str());
  return buf;
}

// --- Block parsing ----------------------------------------------------------

// Parses "name" or "name(arg1,arg2,...)" into name + integer args.
bool ParseBlockCall(const std::string& value, std::string* name,
                    std::vector<std::string>* args) {
  const size_t open = value.find('(');
  if (open == std::string::npos) {
    *name = Lower(value);
    return true;
  }
  if (value.back() != ')') return false;
  *name = Lower(value.substr(0, open));
  const std::string inner = value.substr(open + 1, value.size() - open - 2);
  std::string current;
  for (char c : inner) {
    if (c == ',') {
      args->push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty() || !args->empty() || !inner.empty())
    args->push_back(current);
  return true;
}

// Parses "matrix(RxC:v,v,...)" bodies. The full value includes the prefix.
bool ParseMatrixLiteral(const std::string& value, Matrix* out,
                        std::string* why) {
  // Strip "matrix(" and ")".
  if (value.size() < 9 || Lower(value.substr(0, 7)) != "matrix(" ||
      value.back() != ')') {
    *why = "malformed matrix literal";
    return false;
  }
  const std::string inner = value.substr(7, value.size() - 8);
  const size_t colon = inner.find(':');
  const size_t x = inner.find('x');
  if (colon == std::string::npos || x == std::string::npos || x > colon) {
    *why = "matrix literal must look like matrix(RxC:v,v,...)";
    return false;
  }
  int64_t rows = 0, cols = 0;
  if (!ParseInt(inner.substr(0, x), &rows) ||
      !ParseInt(inner.substr(x + 1, colon - x - 1), &cols) || rows <= 0 ||
      cols <= 0) {
    *why = "bad matrix dimensions";
    return false;
  }
  std::vector<double> data;
  std::string current;
  auto flush = [&]() {
    if (current.empty()) return true;
    double v;
    if (!ParseDouble(current, &v)) return false;
    data.push_back(v);
    current.clear();
    return true;
  };
  for (size_t i = colon + 1; i < inner.size(); ++i) {
    if (inner[i] == ',') {
      if (!flush()) {
        *why = "bad matrix entry";
        return false;
      }
    } else {
      current.push_back(inner[i]);
    }
  }
  if (!flush()) {
    *why = "bad matrix entry";
    return false;
  }
  if (static_cast<int64_t>(data.size()) != rows * cols) {
    *why = "matrix literal entry count does not match dimensions";
    return false;
  }
  *out = Matrix(rows, cols, std::move(data));
  return true;
}

// Builds the named block for an attribute of size n. Returns false with a
// reason on unknown names or invalid arguments.
bool BuildBlock(const std::string& value, int64_t n, Matrix* out,
                std::string* why) {
  if (Lower(value).rfind("matrix(", 0) == 0) {
    Matrix m;
    if (!ParseMatrixLiteral(value, &m, why)) return false;
    if (m.cols() != n) {
      *why = "matrix literal column count does not match attribute size";
      return false;
    }
    *out = std::move(m);
    return true;
  }

  std::string name;
  std::vector<std::string> args;
  if (!ParseBlockCall(value, &name, &args)) {
    *why = "malformed block '" + value + "'";
    return false;
  }
  auto want_args = [&](size_t count) {
    if (args.size() == count) return true;
    *why = "block '" + name + "' expects " + std::to_string(count) +
           " argument(s)";
    return false;
  };

  if (name == "identity") {
    if (!want_args(0)) return false;
    *out = IdentityBlock(n);
    return true;
  }
  if (name == "total") {
    if (!want_args(0)) return false;
    *out = TotalBlock(n);
    return true;
  }
  if (name == "identitytotal") {
    if (!want_args(0)) return false;
    *out = VStack({IdentityBlock(n), TotalBlock(n)});
    return true;
  }
  if (name == "prefix") {
    if (!want_args(0)) return false;
    *out = PrefixBlock(n);
    return true;
  }
  if (name == "allrange") {
    if (!want_args(0)) return false;
    *out = AllRangeBlock(n);
    return true;
  }
  if (name == "width") {
    int64_t w;
    if (!want_args(1)) return false;
    if (!ParseInt(args[0], &w) || w < 1 || w > n) {
      *why = "width(w) needs 1 <= w <= attribute size";
      return false;
    }
    *out = WidthRangeBlock(n, w);
    return true;
  }
  if (name == "point") {
    int64_t v;
    if (!want_args(1)) return false;
    if (!ParseInt(args[0], &v) || v < 0 || v >= n) {
      *why = "point(v) needs 0 <= v < attribute size";
      return false;
    }
    Matrix m(1, n);
    m(0, v) = 1.0;
    *out = std::move(m);
    return true;
  }
  if (name == "range") {
    int64_t lo, hi;
    if (!want_args(2)) return false;
    if (!ParseInt(args[0], &lo) || !ParseInt(args[1], &hi) || lo < 0 ||
        hi < lo || hi >= n) {
      *why = "range(lo,hi) needs 0 <= lo <= hi < attribute size";
      return false;
    }
    Matrix m(1, n);
    for (int64_t j = lo; j <= hi; ++j) m(0, j) = 1.0;
    *out = std::move(m);
    return true;
  }
  *why = "unknown block '" + name + "'";
  return false;
}

// --- Serializer block recognition -------------------------------------------

bool IsIdentityBlock(const Matrix& m) {
  if (m.rows() != m.cols()) return false;
  return m.MaxAbsDiff(IdentityBlock(m.cols())) == 0.0;
}

bool IsTotalBlock(const Matrix& m) {
  if (m.rows() != 1) return false;
  return m.MaxAbsDiff(TotalBlock(m.cols())) == 0.0;
}

bool IsIdentityTotalBlock(const Matrix& m) {
  if (m.rows() != m.cols() + 1) return false;
  return m.MaxAbsDiff(VStack({IdentityBlock(m.cols()), TotalBlock(m.cols())})) ==
         0.0;
}

bool IsPrefixBlock(const Matrix& m) {
  if (m.rows() != m.cols()) return false;
  return m.MaxAbsDiff(PrefixBlock(m.cols())) == 0.0;
}

bool IsAllRangeBlock(const Matrix& m) {
  const int64_t n = m.cols();
  if (m.rows() != n * (n + 1) / 2) return false;
  return m.MaxAbsDiff(AllRangeBlock(n)) == 0.0;
}

// Single contiguous 0/1 row: point or range.
bool SingleRangeRow(const Matrix& m, int64_t* lo, int64_t* hi) {
  if (m.rows() != 1) return false;
  int64_t first = -1, last = -1;
  for (int64_t j = 0; j < m.cols(); ++j) {
    const double v = m(0, j);
    if (v != 0.0 && v != 1.0) return false;
    if (v == 1.0) {
      if (first < 0) first = j;
      last = j;
    }
  }
  if (first < 0) return false;
  for (int64_t j = first; j <= last; ++j) {
    if (m(0, j) != 1.0) return false;
  }
  *lo = first;
  *hi = last;
  return true;
}

bool IsWidthBlock(const Matrix& m, int64_t* w) {
  const int64_t n = m.cols();
  if (m.rows() < 1 || m.rows() > n) return false;
  const int64_t width = n - m.rows() + 1;
  if (width < 1) return false;
  if (m.MaxAbsDiff(WidthRangeBlock(n, width)) != 0.0) return false;
  *w = width;
  return true;
}

std::string MatrixLiteral(const Matrix& m) {
  std::ostringstream out;
  out << "matrix(" << m.rows() << "x" << m.cols() << ":";
  for (int64_t i = 0; i < m.size(); ++i) {
    if (i > 0) out << ",";
    double v = m.data()[i];
    if (v == static_cast<int64_t>(v)) {
      out << static_cast<int64_t>(v);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << buf;
    }
  }
  out << ")";
  return out.str();
}

std::string SerializeBlock(const Matrix& m) {
  int64_t lo, hi, w;
  if (IsIdentityBlock(m)) return "identity";
  if (IsTotalBlock(m)) return "total";
  if (IsIdentityTotalBlock(m)) return "identitytotal";
  if (IsPrefixBlock(m)) return "prefix";
  if (IsAllRangeBlock(m)) return "allrange";
  if (SingleRangeRow(m, &lo, &hi)) {
    if (lo == hi) return "point(" + std::to_string(lo) + ")";
    return "range(" + std::to_string(lo) + "," + std::to_string(hi) + ")";
  }
  if (IsWidthBlock(m, &w)) return "width(" + std::to_string(w) + ")";
  return MatrixLiteral(m);
}

}  // namespace

bool ParseWorkload(const std::string& text, UnionWorkload* out,
                   std::string* error) {
  HDMM_CHECK(out != nullptr && error != nullptr);
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  bool have_domain = false;
  Domain domain;
  std::vector<std::string> attr_names;
  UnionWorkload result;

  while (std::getline(in, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = Trim(raw);
    if (line.empty()) continue;
    std::vector<std::string> tokens = SplitWhitespace(line);
    const std::string keyword = Lower(tokens[0]);

    if (keyword == "domain") {
      if (have_domain) {
        *error = LineError(line_no, "duplicate domain declaration");
        return false;
      }
      std::vector<std::string> names;
      std::vector<int64_t> sizes;
      for (size_t i = 1; i < tokens.size(); ++i) {
        std::string key, value;
        int64_t size;
        if (!SplitKeyValue(tokens[i], &key, &value) ||
            !ParseInt(value, &size) || size < 1) {
          *error = LineError(line_no, "bad attribute '" + tokens[i] +
                                          "' (want name=size)");
          return false;
        }
        for (const std::string& existing : names) {
          if (existing == key) {
            *error = LineError(line_no, "duplicate attribute '" + key + "'");
            return false;
          }
        }
        names.push_back(key);
        sizes.push_back(size);
      }
      if (names.empty()) {
        *error = LineError(line_no, "domain needs at least one attribute");
        return false;
      }
      attr_names = names;
      domain = Domain(std::move(names), std::move(sizes));
      result = UnionWorkload(domain);
      have_domain = true;
      continue;
    }

    if (!have_domain) {
      *error = LineError(line_no, "expected a domain declaration first");
      return false;
    }

    if (keyword == "product") {
      double weight = 1.0;
      std::vector<Matrix> factors;
      std::vector<bool> set(attr_names.size(), false);
      for (int i = 0; i < domain.NumAttributes(); ++i) {
        factors.push_back(TotalBlock(domain.AttributeSize(i)));
      }
      for (size_t i = 1; i < tokens.size(); ++i) {
        std::string key, value;
        if (!SplitKeyValue(tokens[i], &key, &value)) {
          *error = LineError(line_no, "bad token '" + tokens[i] +
                                          "' (want attr=block or weight=X)");
          return false;
        }
        if (Lower(key) == "weight") {
          if (!ParseDouble(value, &weight) || weight <= 0.0) {
            *error = LineError(line_no, "bad weight '" + value + "'");
            return false;
          }
          continue;
        }
        int attr = -1;
        for (size_t a = 0; a < attr_names.size(); ++a) {
          if (attr_names[a] == key) attr = static_cast<int>(a);
        }
        if (attr < 0) {
          *error = LineError(line_no, "unknown attribute '" + key + "'");
          return false;
        }
        if (set[static_cast<size_t>(attr)]) {
          *error = LineError(line_no,
                             "attribute '" + key + "' mentioned twice");
          return false;
        }
        set[static_cast<size_t>(attr)] = true;
        std::string why;
        if (!BuildBlock(value, domain.AttributeSize(attr),
                        &factors[static_cast<size_t>(attr)], &why)) {
          *error = LineError(line_no, why);
          return false;
        }
      }
      ProductWorkload p;
      p.factors = std::move(factors);
      p.weight = weight;
      result.AddProduct(std::move(p));
      continue;
    }

    if (keyword == "marginals") {
      if (tokens.size() != 2) {
        *error = LineError(line_no,
                           "marginals needs exactly one of: k=K, upto=K, all");
        return false;
      }
      const std::string& arg = tokens[1];
      UnionWorkload marg;
      if (Lower(arg) == "all") {
        marg = AllMarginals(domain);
      } else {
        std::string key, value;
        int64_t k;
        if (!SplitKeyValue(arg, &key, &value) || !ParseInt(value, &k) ||
            k < 0 || k > domain.NumAttributes()) {
          *error = LineError(
              line_no, "bad marginals argument '" + arg +
                           "' (want k=K or upto=K with 0 <= K <= d, or all)");
          return false;
        }
        if (Lower(key) == "k") {
          marg = KWayMarginals(domain, static_cast<int>(k));
        } else if (Lower(key) == "upto") {
          marg = UpToKWayMarginals(domain, static_cast<int>(k));
        } else {
          *error = LineError(line_no, "bad marginals key '" + key + "'");
          return false;
        }
      }
      for (const ProductWorkload& p : marg.products()) result.AddProduct(p);
      continue;
    }

    *error = LineError(line_no, "unknown directive '" + tokens[0] + "'");
    return false;
  }

  if (!have_domain) {
    *error = "missing domain declaration";
    return false;
  }
  if (result.NumProducts() == 0) {
    *error = "workload has no products";
    return false;
  }
  *out = std::move(result);
  return true;
}

bool LoadWorkloadFile(const std::string& path, UnionWorkload* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWorkload(buffer.str(), out, error);
}

UnionWorkload ParseWorkloadOrDie(const std::string& text) {
  UnionWorkload w;
  std::string error;
  if (!ParseWorkload(text, &w, &error)) {
    HDMM_CHECK_MSG(false, error.c_str());
  }
  return w;
}

std::string SerializeWorkload(const UnionWorkload& w) {
  std::ostringstream out;
  out << "domain";
  for (int i = 0; i < w.domain().NumAttributes(); ++i) {
    std::string name = w.domain().AttributeName(i);
    if (name.empty()) name = "a" + std::to_string(i + 1);
    out << " " << name << "=" << w.domain().AttributeSize(i);
  }
  out << "\n";
  for (const ProductWorkload& p : w.products()) {
    out << "product";
    if (p.weight != 1.0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", p.weight);
      out << " weight=" << buf;
    }
    for (size_t i = 0; i < p.factors.size(); ++i) {
      const std::string block = SerializeBlock(p.factors[i]);
      if (block == "total") continue;  // The default; keep lines short.
      std::string name = w.domain().AttributeName(static_cast<int>(i));
      if (name.empty()) name = "a" + std::to_string(i + 1);
      out << " " << name << "=" << block;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace hdmm
