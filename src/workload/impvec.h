// The ImpVec algorithm (Algorithm 1, Section 4.3): converts a logical
// workload — a union of products of per-attribute predicate sets — into the
// implicit matrix representation W = w_1 W_1 + ... + w_k W_k.
#ifndef HDMM_WORKLOAD_IMPVEC_H_
#define HDMM_WORKLOAD_IMPVEC_H_

#include <vector>

#include "workload/domain.h"
#include "workload/predicate.h"
#include "workload/workload.h"

namespace hdmm {

/// One logical product q_i = [Phi_1]_{A_1} x ... x [Phi_d]_{A_d}
/// (Definition 3). An empty predicate set on an attribute means Total.
struct LogicalProduct {
  /// predicate_sets[i] applies to attribute i; empty set = Total.
  std::vector<std::vector<Predicate>> predicate_sets;
  double weight = 1.0;
};

/// A logical workload: a union of logical products.
struct LogicalWorkload {
  Domain domain;
  std::vector<LogicalProduct> products;

  /// Convenience: adds a single conjunctive counting query
  /// (one predicate per mentioned attribute; others default to Total).
  void AddConjunction(const std::vector<std::pair<int, Predicate>>& conjuncts,
                      double weight = 1.0);
};

/// ImpVec (Algorithm 1): vectorizes each predicate set per attribute and
/// assembles the implicit union-of-products workload.
UnionWorkload ImpVec(const LogicalWorkload& logical);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_IMPVEC_H_
