#include "workload/predicate.h"

#include <algorithm>

#include "common/check.h"

namespace hdmm {

Predicate Predicate::True() { return Predicate{}; }

Predicate Predicate::Equals(int64_t v) {
  Predicate p;
  p.kind = Kind::kEquals;
  p.value = v;
  return p;
}

Predicate Predicate::Range(int64_t lo, int64_t hi) {
  HDMM_CHECK(lo <= hi);
  Predicate p;
  p.kind = Kind::kRange;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::InSet(std::vector<int64_t> values) {
  Predicate p;
  p.kind = Kind::kInSet;
  p.values = std::move(values);
  return p;
}

bool Predicate::Matches(int64_t v) const {
  switch (kind) {
    case Kind::kTrue:
      return true;
    case Kind::kEquals:
      return v == value;
    case Kind::kRange:
      return v >= lo && v <= hi;
    case Kind::kInSet:
      return std::find(values.begin(), values.end(), v) != values.end();
  }
  return false;
}

Vector VectorizePredicate(const Predicate& p, int64_t n) {
  Vector v(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i)
    if (p.Matches(i)) v[static_cast<size_t>(i)] = 1.0;
  return v;
}

Matrix VectorizePredicateSet(const std::vector<Predicate>& set, int64_t n) {
  HDMM_CHECK(!set.empty());
  Matrix m(static_cast<int64_t>(set.size()), n);
  for (size_t i = 0; i < set.size(); ++i)
    m.SetRow(static_cast<int64_t>(i), VectorizePredicate(set[i], n));
  return m;
}

}  // namespace hdmm
