#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/gram_cache.h"

namespace hdmm {

int64_t ProductWorkload::NumQueries() const {
  int64_t q = 1;
  for (const Matrix& f : factors) q *= f.rows();
  return q;
}

int64_t ProductWorkload::DomainSize() const {
  int64_t n = 1;
  for (const Matrix& f : factors) n *= f.cols();
  return n;
}

Matrix ProductWorkload::Explicit() const {
  Matrix m = KronExplicit(factors);
  if (weight != 1.0) m.ScaleInPlace(weight);
  return m;
}

Matrix ProductWorkload::FactorGram(int i) const {
  return *FactorGramShared(i);
}

std::shared_ptr<const Matrix> ProductWorkload::FactorGramShared(int i) const {
  return GramCache::Global().FactorGram(factors[static_cast<size_t>(i)]);
}

int64_t ProductWorkload::ImplicitStorageDoubles() const {
  int64_t s = 0;
  for (const Matrix& f : factors) s += f.size();
  return s;
}

void UnionWorkload::AddProduct(ProductWorkload p) {
  HDMM_CHECK(static_cast<int>(p.factors.size()) == domain_.NumAttributes());
  for (int i = 0; i < domain_.NumAttributes(); ++i) {
    HDMM_CHECK_MSG(p.factors[static_cast<size_t>(i)].cols() ==
                       domain_.AttributeSize(i),
                   "factor width does not match attribute domain");
  }
  products_.push_back(std::move(p));
}

int64_t UnionWorkload::TotalQueries() const {
  int64_t q = 0;
  for (const ProductWorkload& p : products_) q += p.NumQueries();
  return q;
}

Matrix UnionWorkload::Explicit() const {
  HDMM_CHECK(!products_.empty());
  std::vector<Matrix> blocks;
  blocks.reserve(products_.size());
  for (const ProductWorkload& p : products_) blocks.push_back(p.Explicit());
  return VStack(blocks);
}

Matrix UnionWorkload::ExplicitGram() const {
  HDMM_CHECK(!products_.empty());
  const int64_t n = DomainSize();
  Matrix g = Matrix::Zeros(n, n);
  for (const ProductWorkload& p : products_) {
    std::vector<Matrix> grams;
    grams.reserve(p.factors.size());
    for (const Matrix& f : p.factors) grams.push_back(Gram(f));
    Matrix kg = KronExplicit(grams);
    g.AddInPlace(kg, p.weight * p.weight);
  }
  return g;
}

std::shared_ptr<LinearOperator> UnionWorkload::ToOperator() const {
  HDMM_CHECK(!products_.empty());
  std::vector<std::shared_ptr<const LinearOperator>> blocks;
  for (const ProductWorkload& p : products_) {
    auto kron = std::make_shared<KronOperator>(p.factors);
    if (p.weight == 1.0) {
      blocks.push_back(std::move(kron));
    } else {
      blocks.push_back(
          std::make_shared<ScaledOperator>(p.weight, std::move(kron)));
    }
  }
  if (blocks.size() == 1) {
    return std::const_pointer_cast<LinearOperator>(blocks[0]);
  }
  return std::make_shared<StackedOperator>(std::move(blocks));
}

int64_t UnionWorkload::ImplicitStorageDoubles() const {
  int64_t s = 0;
  for (const ProductWorkload& p : products_) s += p.ImplicitStorageDoubles();
  return s;
}

int64_t UnionWorkload::ExplicitStorageDoubles() const {
  return TotalQueries() * DomainSize();
}

Vector UnionWorkload::AbsColumnSums(int64_t max_cells) const {
  const int64_t n = DomainSize();
  HDMM_CHECK_MSG(n <= max_cells, "domain too large for explicit column sums");
  Vector total(static_cast<size_t>(n), 0.0);
  for (const ProductWorkload& p : products_) {
    std::vector<Vector> per_factor;
    per_factor.reserve(p.factors.size());
    for (const Matrix& f : p.factors) per_factor.push_back(f.AbsColSums());
    Vector expanded = KronVector(per_factor);
    for (size_t i = 0; i < total.size(); ++i)
      total[i] += std::fabs(p.weight) * expanded[i];
  }
  return total;
}

double UnionWorkload::Sensitivity() const {
  const int64_t n = DomainSize();
  if (n <= (int64_t{1} << 26)) {
    Vector sums = AbsColumnSums();
    double m = 0.0;
    for (double v : sums) m = std::max(m, v);
    return m;
  }
  double bound = 0.0;
  for (const ProductWorkload& p : products_) {
    double s = std::fabs(p.weight);
    for (const Matrix& f : p.factors) s *= f.MaxAbsColSum();
    bound += s;
  }
  return bound;
}

UnionWorkload MakeProductWorkload(Domain domain, std::vector<Matrix> factors,
                                  double weight) {
  UnionWorkload w(std::move(domain));
  ProductWorkload p;
  p.factors = std::move(factors);
  p.weight = weight;
  w.AddProduct(std::move(p));
  return w;
}

UnionWorkload WeightForRelativeError(const UnionWorkload& w) {
  UnionWorkload out(w.domain());
  for (const ProductWorkload& p : w.products()) {
    // Average query L1 norm of a product = product of per-factor average
    // absolute row sums (rows of the Kronecker product are Kronecker
    // products of rows, and L1 norms multiply).
    double avg_l1 = 1.0;
    for (const Matrix& f : p.factors) {
      double total = 0.0;
      for (int64_t i = 0; i < f.rows(); ++i) {
        const double* row = f.Row(i);
        double s = 0.0;
        for (int64_t j = 0; j < f.cols(); ++j) s += std::fabs(row[j]);
        total += s;
      }
      avg_l1 *= total / static_cast<double>(f.rows());
    }
    ProductWorkload q = p;
    q.weight = (avg_l1 > 0.0) ? p.weight / avg_l1 : p.weight;
    out.AddProduct(std::move(q));
  }
  return out;
}

}  // namespace hdmm
