#include "workload/domain.h"

#include <sstream>

#include "common/check.h"

namespace hdmm {

Domain::Domain(std::vector<int64_t> sizes)
    : names_(sizes.size()), sizes_(std::move(sizes)) {
  for (int64_t n : sizes_) HDMM_CHECK(n >= 1);
}

Domain::Domain(std::vector<std::string> names, std::vector<int64_t> sizes)
    : names_(std::move(names)), sizes_(std::move(sizes)) {
  HDMM_CHECK(names_.size() == sizes_.size());
  for (int64_t n : sizes_) HDMM_CHECK(n >= 1);
}

int Domain::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  HDMM_CHECK_MSG(false, "unknown attribute name");
  return -1;
}

int64_t Domain::TotalSize() const {
  int64_t n = 1;
  for (int64_t s : sizes_) n *= s;
  return n;
}

int64_t Domain::Flatten(const std::vector<int64_t>& coords) const {
  HDMM_CHECK(coords.size() == sizes_.size());
  int64_t idx = 0;
  for (size_t i = 0; i < sizes_.size(); ++i) {
    HDMM_CHECK(coords[i] >= 0 && coords[i] < sizes_[i]);
    idx = idx * sizes_[i] + coords[i];
  }
  return idx;
}

std::vector<int64_t> Domain::Unflatten(int64_t index) const {
  HDMM_CHECK(index >= 0 && index < TotalSize());
  std::vector<int64_t> coords(sizes_.size());
  for (size_t i = sizes_.size(); i-- > 0;) {
    coords[i] = index % sizes_[i];
    index /= sizes_[i];
  }
  return coords;
}

std::string Domain::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < sizes_.size(); ++i) {
    if (i > 0) os << " x ";
    os << sizes_[i];
  }
  return os.str();
}

}  // namespace hdmm
