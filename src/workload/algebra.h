// Composable operations on implicit workloads. The paper builds its
// workloads by algebra — SF1+ is SF1 with a [Total; Identity] factor grafted
// onto a new State attribute (Example 5), weighted workloads express
// accuracy priorities (Section 3.3) — and these helpers make the same
// constructions one-liners over UnionWorkload values.
#ifndef HDMM_WORKLOAD_ALGEBRA_H_
#define HDMM_WORKLOAD_ALGEBRA_H_

#include <string>

#include "workload/workload.h"

namespace hdmm {

/// Union of two workloads over the same domain: the products of `b` appended
/// to those of `a` (stacking; Section 4.3). Dies on domain mismatch.
UnionWorkload UnionOf(const UnionWorkload& a, const UnionWorkload& b);

/// Scales every product weight by c > 0 (expected squared error scales by
/// c^2; see Definition 7).
UnionWorkload ScaleWeights(const UnionWorkload& w, double c);

/// Appends a new attribute to the domain and grafts `block` onto every
/// product as its factor for that attribute. This is Example 5's
/// SF1 -> SF1+ construction: AppendAttribute(sf1, [Total; Identity], "state")
/// turns each national query into a national + 51 per-state queries.
/// The new attribute's size is block.cols(); `name` may be empty.
UnionWorkload AppendAttribute(const UnionWorkload& w, const Matrix& block,
                              const std::string& name);

/// Replaces attribute `attr`'s factor with Total in every product —
/// marginalizing the workload over that attribute (queries stop
/// distinguishing its values). The domain keeps the attribute.
UnionWorkload MarginalizeAttribute(const UnionWorkload& w, int attr);

/// Merges products with identical factors into one, combining weights as
/// w = sqrt(w_1^2 + w_2^2). This preserves the workload Gram matrix W^T W —
/// and therefore every strategy's expected error (Equation 3) — while
/// shrinking the representation; the query multiset changes (k duplicates
/// collapse to one re-weighted copy).
UnionWorkload MergeDuplicateProducts(const UnionWorkload& w);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_ALGEBRA_H_
