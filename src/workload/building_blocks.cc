#include "workload/building_blocks.h"

#include <algorithm>

namespace hdmm {

Matrix IdentityBlock(int64_t n) { return Matrix::Identity(n); }

Matrix TotalBlock(int64_t n) { return Matrix::Ones(1, n); }

Matrix PrefixBlock(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j <= i; ++j) m(i, j) = 1.0;
  return m;
}

Matrix AllRangeBlock(int64_t n) {
  Matrix m(n * (n + 1) / 2, n);
  int64_t r = 0;
  for (int64_t a = 0; a < n; ++a) {
    for (int64_t b = a; b < n; ++b) {
      for (int64_t j = a; j <= b; ++j) m(r, j) = 1.0;
      ++r;
    }
  }
  return m;
}

Matrix WidthRangeBlock(int64_t n, int64_t w) {
  HDMM_CHECK(w >= 1 && w <= n);
  Matrix m(n - w + 1, n);
  for (int64_t a = 0; a + w <= n; ++a)
    for (int64_t j = a; j < a + w; ++j) m(a, j) = 1.0;
  return m;
}

Matrix PermutedRangeBlock(int64_t n, Rng* rng) {
  Matrix ranges = AllRangeBlock(n);
  std::vector<int> perm = rng->Permutation(static_cast<int>(n));
  Matrix out(ranges.rows(), n);
  for (int64_t i = 0; i < ranges.rows(); ++i)
    for (int64_t j = 0; j < n; ++j)
      out(i, perm[static_cast<size_t>(j)]) = ranges(i, j);
  return out;
}

Matrix PrefixGram(int64_t n) {
  Matrix g(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      g(i, j) = static_cast<double>(n - std::max(i, j));
  return g;
}

Matrix AllRangeGram(int64_t n) {
  Matrix g(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      g(i, j) = static_cast<double>((std::min(i, j) + 1) * (n - std::max(i, j)));
  return g;
}

Matrix WidthRangeGram(int64_t n, int64_t w) {
  HDMM_CHECK(w >= 1 && w <= n);
  Matrix g(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      if (std::llabs(i - j) >= w) continue;
      // Window starts s with s <= min(i,j), s + w > max(i,j), 0 <= s <= n-w.
      int64_t lo = std::max<int64_t>(0, std::max(i, j) - w + 1);
      int64_t hi = std::min(std::min(i, j), n - w);
      if (hi >= lo) g(i, j) = static_cast<double>(hi - lo + 1);
    }
  }
  return g;
}

Matrix PermuteGram(const Matrix& g, const std::vector<int>& perm) {
  const int64_t n = g.rows();
  HDMM_CHECK(static_cast<int64_t>(perm.size()) == n);
  Matrix out(n, n);
  // Workload W P has Gram P^T G P: out[p(i)][p(j)] = g[i][j].
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      out(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]) = g(i, j);
  return out;
}

Matrix HaarBlock(int64_t n) {
  HDMM_CHECK_MSG((n & (n - 1)) == 0 && n >= 1, "HaarBlock requires power of 2");
  Matrix m(n, n);
  // Row 0: total.
  for (int64_t j = 0; j < n; ++j) m(0, j) = 1.0;
  int64_t r = 1;
  for (int64_t width = n; width >= 2; width /= 2) {
    for (int64_t start = 0; start < n; start += width) {
      for (int64_t j = start; j < start + width / 2; ++j) m(r, j) = 1.0;
      for (int64_t j = start + width / 2; j < start + width; ++j)
        m(r, j) = -1.0;
      ++r;
    }
  }
  HDMM_CHECK(r == n);
  return m;
}

Matrix HierarchicalBlock(int64_t n, int64_t b) {
  HDMM_CHECK(b >= 2);
  // Levels from leaves up to the root; each level groups the previous level's
  // blocks b at a time.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> levels;  // [lo, hi)
  std::vector<std::pair<int64_t, int64_t>> cur;
  for (int64_t i = 0; i < n; ++i) cur.push_back({i, i + 1});
  levels.push_back(cur);
  while (cur.size() > 1) {
    std::vector<std::pair<int64_t, int64_t>> next;
    for (size_t i = 0; i < cur.size(); i += static_cast<size_t>(b)) {
      size_t hi = std::min(cur.size(), i + static_cast<size_t>(b));
      next.push_back({cur[i].first, cur[hi - 1].second});
    }
    levels.push_back(next);
    cur = next;
  }
  int64_t rows = 0;
  for (const auto& level : levels) rows += static_cast<int64_t>(level.size());
  Matrix m(rows, n);
  int64_t r = 0;
  for (const auto& level : levels) {
    for (const auto& [lo, hi] : level) {
      for (int64_t j = lo; j < hi; ++j) m(r, j) = 1.0;
      ++r;
    }
  }
  return m;
}

Matrix DyadicPartitionBlock(int64_t n, int level) {
  int64_t blocks = int64_t{1} << level;
  HDMM_CHECK_MSG(n % blocks == 0, "domain not divisible by 2^level");
  int64_t width = n / blocks;
  Matrix m(blocks, n);
  for (int64_t r = 0; r < blocks; ++r)
    for (int64_t j = r * width; j < (r + 1) * width; ++j) m(r, j) = 1.0;
  return m;
}

}  // namespace hdmm
