// Multi-dimensional discrete domains (Section 3.1): the schema over which
// data vectors and workloads are defined.
#ifndef HDMM_WORKLOAD_DOMAIN_H_
#define HDMM_WORKLOAD_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hdmm {

/// A relational schema R(A_1 ... A_d) with finite attribute domains.
/// dom(R) = dom(A_1) x ... x dom(A_d); tuples are flattened row-major
/// (attribute 1 is the most significant coordinate), matching the Kronecker
/// ordering used throughout the library.
class Domain {
 public:
  Domain() = default;

  /// Unnamed attributes with the given sizes.
  explicit Domain(std::vector<int64_t> sizes);

  /// Named attributes.
  Domain(std::vector<std::string> names, std::vector<int64_t> sizes);

  /// Number of attributes d.
  int NumAttributes() const { return static_cast<int>(sizes_.size()); }

  /// Size of attribute i's domain.
  int64_t AttributeSize(int i) const { return sizes_[static_cast<size_t>(i)]; }

  /// Name of attribute i (may be empty).
  const std::string& AttributeName(int i) const {
    return names_[static_cast<size_t>(i)];
  }

  /// Index of the attribute with the given name; dies if absent.
  int AttributeIndex(const std::string& name) const;

  /// N = |dom(R)|, the full domain size (and data-vector length).
  int64_t TotalSize() const;

  const std::vector<int64_t>& sizes() const { return sizes_; }

  /// Row-major flattening of a coordinate tuple into [0, TotalSize).
  int64_t Flatten(const std::vector<int64_t>& coords) const;

  /// Inverse of Flatten.
  std::vector<int64_t> Unflatten(int64_t index) const;

  /// "n1 x n2 x ... x nd" rendering.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<int64_t> sizes_;
};

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_DOMAIN_H_
