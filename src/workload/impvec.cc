#include "workload/impvec.h"

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {

void LogicalWorkload::AddConjunction(
    const std::vector<std::pair<int, Predicate>>& conjuncts, double weight) {
  LogicalProduct p;
  p.predicate_sets.resize(static_cast<size_t>(domain.NumAttributes()));
  p.weight = weight;
  for (const auto& [attr, pred] : conjuncts) {
    HDMM_CHECK(attr >= 0 && attr < domain.NumAttributes());
    p.predicate_sets[static_cast<size_t>(attr)].push_back(pred);
  }
  products.push_back(std::move(p));
}

UnionWorkload ImpVec(const LogicalWorkload& logical) {
  UnionWorkload out(logical.domain);
  for (const LogicalProduct& q : logical.products) {
    HDMM_CHECK(static_cast<int>(q.predicate_sets.size()) ==
               logical.domain.NumAttributes());
    ProductWorkload p;
    p.weight = q.weight;
    for (int i = 0; i < logical.domain.NumAttributes(); ++i) {
      const auto& set = q.predicate_sets[static_cast<size_t>(i)];
      const int64_t n = logical.domain.AttributeSize(i);
      if (set.empty()) {
        // Unmentioned attribute: Total predicate set.
        p.factors.push_back(TotalBlock(n));
      } else {
        p.factors.push_back(VectorizePredicateSet(set, n));
      }
    }
    out.AddProduct(std::move(p));
  }
  return out;
}

}  // namespace hdmm
