// Logical predicates on single attributes (Definition 1) and their
// vectorization (Definition 4, restricted to one attribute as in Section 4.1).
#ifndef HDMM_WORKLOAD_PREDICATE_H_
#define HDMM_WORKLOAD_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace hdmm {

/// A boolean predicate over a single attribute's domain [0, n).
struct Predicate {
  enum class Kind {
    kTrue,     ///< Matches every value (the Total predicate).
    kEquals,   ///< t.A == value.
    kRange,    ///< lo <= t.A <= hi (inclusive).
    kInSet,    ///< t.A in values.
  };

  Kind kind = Kind::kTrue;
  int64_t value = 0;               ///< For kEquals.
  int64_t lo = 0, hi = 0;          ///< For kRange.
  std::vector<int64_t> values;     ///< For kInSet.

  static Predicate True();
  static Predicate Equals(int64_t v);
  static Predicate Range(int64_t lo, int64_t hi);
  static Predicate InSet(std::vector<int64_t> values);

  /// Evaluates the predicate on a domain value.
  bool Matches(int64_t v) const;
};

/// vec(phi) over a single attribute of size n: the 0/1 indicator row.
Vector VectorizePredicate(const Predicate& p, int64_t n);

/// A predicate set Phi = [phi_1 ... phi_p]_A: vectorizes to a p x n matrix
/// whose rows are the individual predicate vectors (ImpVec line 3).
Matrix VectorizePredicateSet(const std::vector<Predicate>& set, int64_t n);

}  // namespace hdmm

#endif  // HDMM_WORKLOAD_PREDICATE_H_
