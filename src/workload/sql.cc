#include "workload/sql.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "workload/building_blocks.h"

namespace hdmm {
namespace {

// --- Tokenizer ---------------------------------------------------------------

enum class TokenType {
  kIdentifier,  // attribute names, keywords (keyword-ness decided later)
  kInteger,
  kSymbol,  // one of: , ( ) * = != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // Original spelling (upper-cased for identifiers).
  std::string raw;      // Original spelling, case preserved.
  int64_t value = 0;    // For kInteger.
  size_t offset = 0;    // Byte offset, for error messages.
};

std::string UpperCase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool Tokenize(const std::string& sql, std::vector<Token>* out,
              std::string* error) {
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[j])) ||
              sql[j] == '_')) {
        ++j;
      }
      tok.type = TokenType::kIdentifier;
      tok.raw = sql.substr(i, j - i);
      tok.text = UpperCase(tok.raw);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < sql.size() && std::isdigit(static_cast<unsigned char>(sql[j])))
        ++j;
      tok.type = TokenType::kInteger;
      tok.raw = sql.substr(i, j - i);
      tok.text = tok.raw;
      tok.value = std::strtoll(tok.raw.c_str(), nullptr, 10);
      i = j;
    } else if (c == '<' || c == '>' || c == '!') {
      size_t j = i + 1;
      if (j < sql.size() && sql[j] == '=') ++j;
      tok.type = TokenType::kSymbol;
      tok.raw = sql.substr(i, j - i);
      tok.text = tok.raw;
      if (tok.text == "!") {
        *error = "offset " + std::to_string(i) + ": stray '!'";
        return false;
      }
      i = j;
    } else if (c == ',' || c == '(' || c == ')' || c == '*' || c == '=') {
      tok.type = TokenType::kSymbol;
      tok.raw = std::string(1, c);
      tok.text = tok.raw;
      ++i;
    } else {
      *error = "offset " + std::to_string(i) + ": unexpected character '" +
               std::string(1, c) + "'";
      return false;
    }
    out->push_back(std::move(tok));
  }
  Token end;
  end.offset = sql.size();
  out->push_back(end);
  return true;
}

// --- Parser ------------------------------------------------------------------

class SqlParser {
 public:
  SqlParser(std::vector<Token> tokens, const Domain& domain)
      : tokens_(std::move(tokens)), domain_(domain) {}

  bool Parse(ProductWorkload* out, std::string* error) {
    error_ = error;
    // Per-attribute predicate masks; empty = unconstrained.
    masks_.assign(static_cast<size_t>(domain_.NumAttributes()), Vector());
    group_by_.assign(static_cast<size_t>(domain_.NumAttributes()), false);
    select_attrs_.clear();

    if (!ExpectKeyword("SELECT")) return false;
    if (!ParseSelectList()) return false;
    if (!ExpectKeyword("FROM")) return false;
    if (Current().type != TokenType::kIdentifier) {
      return Fail("expected a relation name after FROM");
    }
    Advance();  // Relation name is decorative; the Domain is the schema.

    if (MatchKeyword("WHERE")) {
      if (!ParsePredicate()) return false;
      while (MatchKeyword("AND")) {
        if (!ParsePredicate()) return false;
      }
    }
    if (MatchKeyword("GROUP")) {
      if (!ExpectKeyword("BY")) return false;
      if (!ParseGroupByList()) return false;
    }
    if (Current().type != TokenType::kEnd) {
      return Fail("unexpected trailing token '" + Current().raw + "'");
    }

    // Every non-COUNT select item must be grouped (standard SQL semantics,
    // and what makes the product interpretation of Example 3 correct).
    for (int attr : select_attrs_) {
      if (!group_by_[static_cast<size_t>(attr)]) {
        return Fail("selected attribute '" + domain_.AttributeName(attr) +
                    "' is not in GROUP BY");
      }
    }

    return BuildProduct(out);
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool Fail(const std::string& message) {
    *error_ = "offset " + std::to_string(Current().offset) + ": " + message;
    return false;
  }

  bool MatchKeyword(const char* kw) {
    if (Current().type == TokenType::kIdentifier && Current().text == kw) {
      Advance();
      return true;
    }
    return false;
  }

  bool ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return true;
    return Fail(std::string("expected ") + kw);
  }

  bool MatchSymbol(const char* sym) {
    if (Current().type == TokenType::kSymbol && Current().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  bool ExpectSymbol(const char* sym) {
    if (MatchSymbol(sym)) return true;
    return Fail(std::string("expected '") + sym + "'");
  }

  // Resolves the current identifier token as a domain attribute.
  bool ParseAttribute(int* attr) {
    if (Current().type != TokenType::kIdentifier) {
      return Fail("expected an attribute name");
    }
    const std::string& name = Current().raw;
    for (int i = 0; i < domain_.NumAttributes(); ++i) {
      if (domain_.AttributeName(i) == name) {
        *attr = i;
        Advance();
        return true;
      }
    }
    return Fail("unknown attribute '" + name + "'");
  }

  // select_list := (attr ,)* COUNT ( * )  — attributes may precede COUNT(*).
  bool ParseSelectList() {
    while (true) {
      if (MatchKeyword("COUNT")) {
        if (!ExpectSymbol("(")) return false;
        if (!ExpectSymbol("*")) return false;
        if (!ExpectSymbol(")")) return false;
        return true;  // COUNT(*) terminates the select list.
      }
      int attr;
      if (!ParseAttribute(&attr)) return false;
      select_attrs_.push_back(attr);
      if (!ExpectSymbol(",")) {
        *error_ += " (the select list must end with COUNT(*))";
        return false;
      }
    }
  }

  bool ParseGroupByList() {
    do {
      int attr;
      if (!ParseAttribute(&attr)) return false;
      group_by_[static_cast<size_t>(attr)] = true;
    } while (MatchSymbol(","));
    return true;
  }

  Vector& MaskFor(int attr) {
    Vector& mask = masks_[static_cast<size_t>(attr)];
    if (mask.empty()) {
      mask.assign(static_cast<size_t>(domain_.AttributeSize(attr)), 1.0);
    }
    return mask;
  }

  bool ExpectInteger(int64_t* value) {
    if (Current().type != TokenType::kInteger) {
      return Fail("expected an integer constant");
    }
    *value = Current().value;
    Advance();
    return true;
  }

  bool CheckInDomain(int attr, int64_t v) {
    if (v < 0 || v >= domain_.AttributeSize(attr)) {
      return Fail("constant " + std::to_string(v) + " outside dom(" +
                  domain_.AttributeName(attr) + ") = [0, " +
                  std::to_string(domain_.AttributeSize(attr)) + ")");
    }
    return true;
  }

  // predicate := attr op int | attr BETWEEN int AND int | attr IN (int, ...)
  bool ParsePredicate() {
    int attr;
    if (!ParseAttribute(&attr)) return false;
    const int64_t n = domain_.AttributeSize(attr);
    Vector pred(static_cast<size_t>(n), 0.0);

    if (MatchKeyword("BETWEEN")) {
      int64_t lo = 0, hi = 0;
      if (!ExpectInteger(&lo)) return false;
      if (!ExpectKeyword("AND")) return false;
      if (!ExpectInteger(&hi)) return false;
      if (!CheckInDomain(attr, lo) || !CheckInDomain(attr, hi)) return false;
      if (hi < lo) return Fail("BETWEEN bounds out of order");
      for (int64_t v = lo; v <= hi; ++v) pred[static_cast<size_t>(v)] = 1.0;
    } else if (MatchKeyword("IN")) {
      if (!ExpectSymbol("(")) return false;
      do {
        int64_t v = 0;
        if (!ExpectInteger(&v)) return false;
        if (!CheckInDomain(attr, v)) return false;
        pred[static_cast<size_t>(v)] = 1.0;
      } while (MatchSymbol(","));
      if (!ExpectSymbol(")")) return false;
    } else if (Current().type == TokenType::kSymbol) {
      const std::string op = Current().text;
      if (op != "=" && op != "!=" && op != "<" && op != "<=" && op != ">" &&
          op != ">=") {
        return Fail("expected a comparison operator");
      }
      Advance();
      int64_t c = 0;
      if (!ExpectInteger(&c)) return false;
      // Out-of-domain constants in inequalities are allowed (they just
      // saturate); equality against them is an error.
      if ((op == "=" || op == "!=") && !CheckInDomain(attr, c)) return false;
      for (int64_t v = 0; v < n; ++v) {
        bool keep = false;
        if (op == "=") keep = (v == c);
        else if (op == "!=") keep = (v != c);
        else if (op == "<") keep = (v < c);
        else if (op == "<=") keep = (v <= c);
        else if (op == ">") keep = (v > c);
        else keep = (v >= c);
        if (keep) pred[static_cast<size_t>(v)] = 1.0;
      }
    } else {
      return Fail("expected a comparison operator, BETWEEN, or IN");
    }

    Vector& mask = MaskFor(attr);
    for (size_t v = 0; v < mask.size(); ++v) mask[v] *= pred[v];
    return true;
  }

  bool BuildProduct(ProductWorkload* out) {
    out->factors.clear();
    out->weight = 1.0;
    for (int attr = 0; attr < domain_.NumAttributes(); ++attr) {
      const int64_t n = domain_.AttributeSize(attr);
      const Vector& mask = masks_[static_cast<size_t>(attr)];
      const bool grouped = group_by_[static_cast<size_t>(attr)];
      const bool constrained = !mask.empty();

      if (constrained) {
        double selected = 0.0;
        for (double v : mask) selected += v;
        if (selected == 0.0) {
          pos_ = tokens_.size() - 1;  // Anchor the error at end of statement.
          return Fail("contradictory predicates eliminate attribute '" +
                      domain_.AttributeName(attr) + "'");
        }
      }

      if (grouped && !constrained) {
        out->factors.push_back(IdentityBlock(n));
      } else if (grouped) {
        // One group per surviving value: the rows of Identity restricted to
        // the mask (Example 3 with a WHERE condition on a grouped column).
        int64_t rows = 0;
        for (double v : mask) rows += (v != 0.0) ? 1 : 0;
        Matrix block(rows, n);
        int64_t r = 0;
        for (int64_t v = 0; v < n; ++v) {
          if (mask[static_cast<size_t>(v)] != 0.0) block(r++, v) = 1.0;
        }
        out->factors.push_back(std::move(block));
      } else if (constrained) {
        Matrix block(1, n);
        for (int64_t v = 0; v < n; ++v) block(0, v) = mask[static_cast<size_t>(v)];
        out->factors.push_back(std::move(block));
      } else {
        out->factors.push_back(TotalBlock(n));
      }
    }
    return true;
  }

  std::vector<Token> tokens_;
  const Domain& domain_;
  size_t pos_ = 0;
  std::string* error_ = nullptr;

  std::vector<Vector> masks_;
  std::vector<bool> group_by_;
  std::vector<int> select_attrs_;
};

}  // namespace

bool ParseSqlQuery(const std::string& sql, const Domain& domain,
                   ProductWorkload* out, std::string* error) {
  HDMM_CHECK(out != nullptr && error != nullptr);
  std::vector<Token> tokens;
  if (!Tokenize(sql, &tokens, error)) return false;
  SqlParser parser(std::move(tokens), domain);
  return parser.Parse(out, error);
}

bool ParseSqlWorkload(const std::string& script, const Domain& domain,
                      UnionWorkload* out, std::string* error) {
  HDMM_CHECK(out != nullptr && error != nullptr);
  UnionWorkload result(domain);
  size_t start = 0;
  int statement_no = 0;
  while (start <= script.size()) {
    size_t semi = script.find(';', start);
    const std::string stmt = script.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    start = (semi == std::string::npos) ? script.size() + 1 : semi + 1;

    bool blank = true;
    for (char c : stmt) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;

    ++statement_no;
    ProductWorkload p;
    if (!ParseSqlQuery(stmt, domain, &p, error)) {
      *error = "statement " + std::to_string(statement_no) + ": " + *error;
      return false;
    }
    result.AddProduct(std::move(p));
  }
  if (result.NumProducts() == 0) {
    *error = "script contains no statements";
    return false;
  }
  *out = std::move(result);
  return true;
}

UnionWorkload ParseSqlWorkloadOrDie(const std::string& script,
                                    const Domain& domain) {
  UnionWorkload w;
  std::string error;
  if (!ParseSqlWorkload(script, domain, &w, &error)) {
    HDMM_CHECK_MSG(false, error.c_str());
  }
  return w;
}

}  // namespace hdmm
